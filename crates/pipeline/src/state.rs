//! The shared machine state ("substrate") that every pipeline stage operates
//! on.
//!
//! [`PipelineState`] owns the back-end in two layers:
//!
//! * **Shared substrate** — the structures all hardware threads compete for:
//!   the physical register free lists, the functional units, the memory
//!   hierarchy and the cycle counter.
//! * **Per-thread state** ([`ThreadState`]) — everything keyed by a
//!   thread-private sequence-number space or architectural state: ROB, IQ,
//!   RAT, LQ/SQ, LTP unit, memory-dependence predictor, in-flight metadata
//!   and the per-thread counters.
//!
//! A single-threaded machine has exactly one [`ThreadState`] and behaves
//! bit-for-bit like the pre-SMT pipeline. Under SMT
//! ([`crate::SmtConfig::is_smt`]) the stages run once per thread per cycle
//! with `active` pointing at the thread being driven, and every capacity
//! check goes through the `*_has_space` helpers here, which enforce the
//! configured [`crate::SharePolicy`]:
//!
//! * `StaticPartition` — per-thread structures are built at `size / threads`
//!   and the thread-local check is the whole story;
//! * `Shared` / `Icount` — per-thread structures are built at full size and
//!   the helpers additionally bound the *combined* occupancy, so capacity one
//!   thread does not use (e.g. because LTP parked its non-critical
//!   instructions) is genuinely available to the co-runner.
//!
//! The per-stage *logic* lives in the [`crate::stages`] modules; stages read
//! and write this state and exchange per-cycle signals through the
//! [`crate::StageBus`]. Helper predicates shared by more than one stage
//! (register allocation, the §5.4 release-reserve checks) are methods here so
//! the stages stay small.

use crate::config::{PipelineConfig, SharePolicy};
use crate::free_list::FreeList;
use crate::iq::{IqEntry, IssueQueue};
use crate::lsq::{LoadQueue, MemDepPredictor, StoreQueue};
use crate::rat::{Rat, RegSource};
use crate::result::{ActivityCounters, OccupancyReport};
use crate::rob::{Rob, RobEntry};
use crate::FuPool;
use inlinevec::InlineVec;
use ltp_core::LtpUnit;
use ltp_isa::{DynInst, PhysReg, RegClass, SeqNum, ThreadId};
use ltp_mem::{Cycle, MemoryHierarchy};
use std::collections::{HashMap, HashSet};

/// Offset separating floating point physical register indices from integer
/// ones, so both free lists can share the dense [`PhysReg`] namespace.
pub(crate) const FP_PHYS_OFFSET: u32 = 1 << 20;

/// Per-instruction in-flight metadata not stored in the ROB.
#[derive(Debug, Clone)]
pub(crate) struct InFlight {
    pub(crate) inst: DynInst,
    /// Source operands resolved at rename time: physical registers...
    pub(crate) src_phys: InlineVec<PhysReg, 4>,
    /// ... and producers that were parked at rename time (waited on by
    /// sequence number).
    pub(crate) src_seqs: InlineVec<SeqNum, 2>,
}

/// The architectural and windowing state of one hardware thread.
///
/// Sequence numbers are dense *per thread*, so every structure indexed by
/// [`SeqNum`] lives here rather than in the shared substrate.
#[derive(Debug, Clone)]
pub(crate) struct ThreadState {
    pub(crate) tid: ThreadId,
    pub(crate) ltp: LtpUnit,
    pub(crate) rob: Rob,
    pub(crate) iq: IssueQueue,
    pub(crate) rat: Rat,
    pub(crate) lq: LoadQueue,
    pub(crate) sq: StoreQueue,
    pub(crate) memdep: MemDepPredictor,
    pub(crate) inflight: HashMap<u64, InFlight>,
    pub(crate) completed_regs: HashSet<PhysReg>,
    pub(crate) released_parked_regs: HashMap<u64, PhysReg>,
    pub(crate) committed: u64,
    pub(crate) loads_committed: u64,
    pub(crate) stores_committed: u64,
    pub(crate) llc_miss_loads: u64,
    pub(crate) last_commit_cycle: Cycle,
    pub(crate) occupancy: OccupancyReport,
    pub(crate) activity: ActivityCounters,
    /// Physical registers this thread has allocated from the shared free
    /// lists (per class). Equals the free-list `allocated()` on a
    /// single-threaded machine; under SMT it is the thread's share.
    pub(crate) int_regs_used: usize,
    pub(crate) fp_regs_used: usize,
    /// Per-thread register quotas (static partitioning only; `usize::MAX`
    /// otherwise). Grows as this thread recycles initial architectural
    /// mappings, mirroring `FreeList::add_capacity`.
    pub(crate) int_quota: usize,
    pub(crate) fp_quota: usize,
}

/// All machine state shared between the pipeline stages.
///
/// The *active* thread's state sits behind one stable pointer (`thread`), so
/// the hot loop pays a single well-predicted indirection instead of a
/// `Vec[index]` bounds check on every access, and
/// [`PipelineState::activate`] switches threads by swapping two `Box`
/// pointers — the SMT cycle loop can interleave threads stage-by-stage
/// (the faithful model of concurrent SMT stages) without copying state.
#[derive(Debug)]
pub(crate) struct PipelineState {
    pub(crate) cfg: PipelineConfig,
    pub(crate) now: Cycle,
    pub(crate) mem: MemoryHierarchy,
    pub(crate) fu: FuPool,
    pub(crate) int_free: FreeList,
    pub(crate) fp_free: FreeList,
    /// Reused by the issue stage for the per-cycle selection, so the hot
    /// loop never allocates.
    pub(crate) issue_scratch: Vec<IqEntry>,
    /// The thread the stages are currently driving.
    pub(crate) thread: Box<ThreadState>,
    /// The other hardware threads (empty when SMT is off). Boxed on purpose:
    /// [`PipelineState::activate`] swaps one of these with `thread`, and the
    /// matching `Box`es make that an 8-byte pointer swap instead of copying
    /// the whole `ThreadState`.
    #[allow(clippy::vec_box)]
    pub(crate) parked_threads: Vec<Box<ThreadState>>,
    /// Thread id of `thread`.
    pub(crate) active: usize,
}

impl PipelineState {
    // --- thread accessors ---------------------------------------------------

    /// The thread currently being driven.
    #[inline]
    pub(crate) fn t(&self) -> &ThreadState {
        &self.thread
    }

    /// Mutable view of the thread currently being driven.
    #[inline]
    pub(crate) fn tm(&mut self) -> &mut ThreadState {
        &mut self.thread
    }

    /// Whether more than one hardware thread is configured.
    #[inline]
    pub(crate) fn is_smt(&self) -> bool {
        !self.parked_threads.is_empty()
    }

    /// Number of hardware threads.
    pub(crate) fn nthreads(&self) -> usize {
        1 + self.parked_threads.len()
    }

    /// Makes thread `tid` the active one, swapping its state inline. A no-op
    /// when it already is (always, on a single-threaded machine).
    pub(crate) fn activate(&mut self, tid: usize) {
        if self.active == tid {
            return;
        }
        let slot = self
            .parked_threads
            .iter()
            .position(|t| t.tid.index() == tid)
            .expect("activating an unknown hardware thread");
        std::mem::swap(&mut self.thread, &mut self.parked_threads[slot]);
        self.active = tid;
    }

    /// Mutable state of thread `tid`, active or not.
    pub(crate) fn thread_mut(&mut self, tid: usize) -> &mut ThreadState {
        if self.active == tid {
            &mut self.thread
        } else {
            self.parked_threads
                .iter_mut()
                .find(|t| t.tid.index() == tid)
                .expect("unknown hardware thread")
        }
    }

    /// The state of thread `tid`, active or not.
    pub(crate) fn thread_ref(&self, tid: usize) -> &ThreadState {
        if self.active == tid {
            &self.thread
        } else {
            self.parked_threads
                .iter()
                .find(|t| t.tid.index() == tid)
                .expect("unknown hardware thread")
        }
    }

    /// All hardware threads, active first (order is unspecified beyond that).
    pub(crate) fn all_threads(&self) -> impl Iterator<Item = &ThreadState> {
        std::iter::once(&*self.thread).chain(self.parked_threads.iter().map(|t| &**t))
    }

    /// Split borrow used by the issue stage: the active thread's IQ plus the
    /// shared functional unit pool.
    pub(crate) fn iq_and_fu(&mut self) -> (&mut IssueQueue, &mut FuPool) {
        (&mut self.thread.iq, &mut self.fu)
    }

    // --- shared-capacity policy ---------------------------------------------

    /// Whether a combined occupancy of `total + reserve` stays within a
    /// shared structure of `limit` entries. Static partitioning delegates
    /// entirely to the per-thread capacities.
    fn shared_within(&self, total: usize, reserve: usize, limit: usize) -> bool {
        match self.cfg.smt.policy {
            SharePolicy::StaticPartition => true,
            SharePolicy::Shared | SharePolicy::Icount => {
                limit == usize::MAX || total + reserve < limit
            }
        }
    }

    fn rob_total(&self) -> usize {
        self.all_threads().map(|t| t.rob.len()).sum()
    }

    pub(crate) fn iq_total(&self) -> usize {
        self.all_threads().map(|t| t.iq.len()).sum()
    }

    fn lq_total(&self) -> usize {
        self.all_threads().map(|t| t.lq.len()).sum()
    }

    fn sq_total(&self) -> usize {
        self.all_threads().map(|t| t.sq.len()).sum()
    }

    /// Whether the active thread may allocate another ROB entry.
    pub(crate) fn rob_has_space(&self) -> bool {
        let local = self.t().rob.has_space();
        if !self.is_smt() {
            return local;
        }
        local && self.shared_within(self.rob_total(), 0, self.cfg.rob_size)
    }

    /// Whether the active thread may dispatch another IQ entry.
    pub(crate) fn iq_has_space(&self) -> bool {
        let local = self.t().iq.has_space();
        if !self.is_smt() {
            return local;
        }
        local && self.shared_within(self.iq_total(), 0, self.cfg.iq_size)
    }

    /// Whether the active thread may allocate another LQ entry.
    pub(crate) fn lq_has_space(&self) -> bool {
        let local = self.t().lq.has_space();
        if !self.is_smt() {
            return local;
        }
        local && self.shared_within(self.lq_total(), 0, self.cfg.lq_size)
    }

    /// Whether the active thread may allocate another SQ entry.
    pub(crate) fn sq_has_space(&self) -> bool {
        let local = self.t().sq.has_space();
        if !self.is_smt() {
            return local;
        }
        local && self.shared_within(self.sq_total(), 0, self.cfg.sq_size)
    }

    /// LQ space check that keeps `reserve` entries back for LTP releases.
    pub(crate) fn lq_has_space_beyond_reserve(&self, reserve: usize) -> bool {
        let local = self.t().lq.has_space_beyond_reserve(reserve);
        if !self.is_smt() {
            return local;
        }
        local && self.shared_within(self.lq_total(), reserve, self.cfg.lq_size)
    }

    /// SQ space check that keeps `reserve` entries back for LTP releases.
    pub(crate) fn sq_has_space_beyond_reserve(&self, reserve: usize) -> bool {
        let local = self.t().sq.has_space_beyond_reserve(reserve);
        if !self.is_smt() {
            return local;
        }
        local && self.shared_within(self.sq_total(), reserve, self.cfg.sq_size)
    }

    /// Whether the §5.4 reserved IQ bypass slot can accept a forced release
    /// for the active thread.
    pub(crate) fn iq_bypass_has_room(&self) -> bool {
        let cap = self.t().iq.capacity();
        let local =
            cap == usize::MAX || self.t().iq.len() < cap.saturating_add(self.cfg.ltp_reserve);
        if !self.is_smt() {
            return local;
        }
        local
            && self.shared_within(
                self.iq_total(),
                0,
                self.cfg.iq_size.saturating_add(self.cfg.ltp_reserve),
            )
    }

    // --- register helpers ---------------------------------------------------

    /// Registers of `class` the active thread can still obtain: the shared
    /// free list bounded by the thread's static-partition quota (unlimited
    /// quota outside static partitioning).
    pub(crate) fn regs_available(&self, class: RegClass) -> usize {
        let t = self.t();
        let (free, quota, used) = match class {
            RegClass::Int => (self.int_free.available(), t.int_quota, t.int_regs_used),
            RegClass::Fp => (self.fp_free.available(), t.fp_quota, t.fp_regs_used),
        };
        if quota == usize::MAX {
            free
        } else {
            free.min(quota.saturating_sub(used))
        }
    }

    pub(crate) fn alloc_dest(&mut self, class: RegClass) -> Option<PhysReg> {
        let (quota, used) = match class {
            RegClass::Int => (self.thread.int_quota, self.thread.int_regs_used),
            RegClass::Fp => (self.thread.fp_quota, self.thread.fp_regs_used),
        };
        if quota != usize::MAX && used >= quota {
            return None;
        }
        let reg = match class {
            RegClass::Int => self.int_free.allocate(),
            RegClass::Fp => self
                .fp_free
                .allocate()
                .map(|p| PhysReg::new(p.index() as u32 + FP_PHYS_OFFSET)),
        };
        if reg.is_some() {
            match class {
                RegClass::Int => self.thread.int_regs_used += 1,
                RegClass::Fp => self.thread.fp_regs_used += 1,
            }
        }
        reg
    }

    pub(crate) fn can_alloc_beyond_reserve(&self, class: RegClass, reserve: usize) -> bool {
        let within_quota = {
            let t = self.t();
            let (quota, used) = match class {
                RegClass::Int => (t.int_quota, t.int_regs_used),
                RegClass::Fp => (t.fp_quota, t.fp_regs_used),
            };
            quota == usize::MAX || used + reserve < quota
        };
        within_quota
            && match class {
                RegClass::Int => self.int_free.can_allocate_beyond_reserve(reserve),
                RegClass::Fp => self.fp_free.can_allocate_beyond_reserve(reserve),
            }
    }

    pub(crate) fn free_dest(&mut self, reg: PhysReg) {
        self.tm().completed_regs.remove(&reg);
        if (reg.index() as u32) >= FP_PHYS_OFFSET {
            self.fp_free
                .free(PhysReg::new(reg.index() as u32 - FP_PHYS_OFFSET));
            self.tm().fp_regs_used -= 1;
        } else {
            self.int_free.free(reg);
            self.tm().int_regs_used -= 1;
        }
    }

    /// Recycles the physical register that held an architectural register's
    /// initial value into the shared pool (footnote 4 of the paper), growing
    /// the active thread's quota alongside under static partitioning.
    pub(crate) fn recycle_arch_reg(&mut self, class: RegClass) {
        match class {
            RegClass::Int => {
                self.int_free.add_capacity(1);
                let t = self.tm();
                if t.int_quota != usize::MAX {
                    t.int_quota += 1;
                }
            }
            RegClass::Fp => {
                self.fp_free.add_capacity(1);
                let t = self.tm();
                if t.fp_quota != usize::MAX {
                    t.fp_quota += 1;
                }
            }
        }
    }

    pub(crate) fn is_seq_done(&self, seq: SeqNum) -> bool {
        self.t()
            .rob
            .get(seq)
            .map(|e| e.is_completed())
            .unwrap_or(true)
    }

    pub(crate) fn resolve_sources(
        &self,
        inst: &DynInst,
    ) -> (InlineVec<PhysReg, 4>, InlineVec<SeqNum, 2>) {
        let mut phys = InlineVec::new();
        let mut seqs = InlineVec::new();
        let t = self.t();
        for src in inst.static_inst().dataflow_srcs() {
            match t.rat.source(src) {
                RegSource::Ready => {}
                RegSource::Phys(p) => {
                    if !t.completed_regs.contains(&p) {
                        phys.push(p);
                    }
                }
                RegSource::Parked(s) => {
                    if !self.is_seq_done(s) {
                        seqs.push(s);
                    }
                }
            }
        }
        (phys, seqs)
    }

    // --- release-reserve predicates (§5.4) ----------------------------------

    /// Whether `entry` is the oldest instruction of the active thread (its
    /// ROB head). The last free register of a class is reserved for the head
    /// so that younger releases can never starve it (§5.4's "we always pick
    /// the oldest instruction").
    pub(crate) fn is_rob_head(&self, entry: &RobEntry) -> bool {
        self.t().rob.head().map(|h| h.seq) == Some(entry.seq)
    }

    /// Register-availability check for placing a released instruction: a
    /// non-head release must leave at least one register of the class free
    /// for the (current or future) ROB head.
    pub(crate) fn release_reg_available(&self, entry: &RobEntry) -> bool {
        let Some(dst) = entry.dst else { return true };
        let available = self.regs_available(dst.class());
        if self.is_rob_head(entry) {
            available > 0
        } else {
            available > 1
        }
    }

    /// Whether a *forced* release (deadlock-avoidance path) can be placed:
    /// it only needs a destination register (drawn from the §5.4 reserve) and,
    /// when LQ/SQ allocation is delayed, a memory-queue entry; the IQ is
    /// bypassed through the reserved slot.
    pub(crate) fn can_force_release(&self, entry: &RobEntry) -> bool {
        if !self.release_reg_available(entry) {
            return false;
        }
        self.release_lsq_available(entry)
    }

    /// LQ/SQ-availability check for releases when allocation is delayed: the
    /// last entry of each queue is reserved for the ROB head.
    pub(crate) fn release_lsq_available(&self, entry: &RobEntry) -> bool {
        if !self.cfg.delay_lsq_alloc {
            return true;
        }
        let head = self.is_rob_head(entry);
        if entry.op.is_load() && !entry.holds_lq {
            let ok = if head {
                self.lq_has_space()
            } else {
                self.lq_has_space_beyond_reserve(1)
            };
            if !ok {
                return false;
            }
        }
        if entry.op.is_store() && !entry.holds_sq {
            let ok = if head {
                self.sq_has_space()
            } else {
                self.sq_has_space_beyond_reserve(1)
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Whether the resources needed to place a released parked instruction
    /// are available right now.
    pub(crate) fn can_place_released(&self, entry: &RobEntry) -> bool {
        if !self.iq_has_space() {
            return false;
        }
        // Releases may dip into the register reserve (that is what it is
        // for), but only the ROB head may take the very last register (and,
        // with delayed LQ/SQ allocation, the last memory-queue entry).
        if !self.release_reg_available(entry) {
            return false;
        }
        self.release_lsq_available(entry)
    }

    // --- per-cycle sampling -------------------------------------------------

    /// Samples the active thread's occupancy trackers. `outstanding` is the
    /// shared hierarchy's outstanding-miss count, computed once per cycle by
    /// the caller so an SMT cycle does not query the MSHRs per thread.
    pub(crate) fn sample_occupancy(&mut self, outstanding: u64) {
        let t = self.tm();
        let occ = &mut t.occupancy;
        occ.iq.sample_cycle(t.iq.len() as u64);
        occ.rob.sample_cycle(t.rob.len() as u64);
        occ.lq.sample_cycle(t.lq.len() as u64);
        occ.sq.sample_cycle(t.sq.len() as u64);
        occ.regs
            .sample_cycle((t.int_regs_used + t.fp_regs_used) as u64);
        occ.ltp.sample_cycle(t.ltp.occupancy() as u64);
        occ.ltp_regs.sample_cycle(t.ltp.parked_writers() as u64);
        occ.ltp_loads.sample_cycle(t.ltp.parked_loads() as u64);
        occ.ltp_stores.sample_cycle(t.ltp.parked_stores() as u64);
        occ.outstanding_misses.sample_cycle(outstanding);
    }
}
