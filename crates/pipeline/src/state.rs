//! The shared machine state ("substrate") that every pipeline stage operates
//! on.
//!
//! [`PipelineState`] owns all back-end structures — ROB, IQ, RAT, free lists,
//! LQ/SQ, functional units, the memory hierarchy and the LTP unit — plus the
//! run-wide counters. The per-stage *logic* lives in the [`crate::stages`]
//! modules; stages read and write this state and exchange per-cycle signals
//! through the [`crate::StageBus`]. Helper predicates shared by more than one
//! stage (register allocation, the §5.4 release-reserve checks) are methods
//! here so the stages stay small.

use crate::config::PipelineConfig;
use crate::free_list::FreeList;
use crate::iq::{IqEntry, IssueQueue};
use crate::lsq::{LoadQueue, MemDepPredictor, StoreQueue};
use crate::rat::{Rat, RegSource};
use crate::result::{ActivityCounters, OccupancyReport};
use crate::rob::{Rob, RobEntry};
use crate::FuPool;
use inlinevec::InlineVec;
use ltp_core::LtpUnit;
use ltp_isa::{DynInst, PhysReg, RegClass, SeqNum};
use ltp_mem::{Cycle, MemoryHierarchy};
use std::collections::{HashMap, HashSet};

/// Offset separating floating point physical register indices from integer
/// ones, so both free lists can share the dense [`PhysReg`] namespace.
pub(crate) const FP_PHYS_OFFSET: u32 = 1 << 20;

/// Per-instruction in-flight metadata not stored in the ROB.
#[derive(Debug, Clone)]
pub(crate) struct InFlight {
    pub(crate) inst: DynInst,
    /// Source operands resolved at rename time: physical registers...
    pub(crate) src_phys: InlineVec<PhysReg, 4>,
    /// ... and producers that were parked at rename time (waited on by
    /// sequence number).
    pub(crate) src_seqs: InlineVec<SeqNum, 2>,
}

/// All machine state shared between the pipeline stages.
#[derive(Debug)]
pub(crate) struct PipelineState {
    pub(crate) cfg: PipelineConfig,
    pub(crate) now: Cycle,
    pub(crate) mem: MemoryHierarchy,
    pub(crate) ltp: LtpUnit,
    pub(crate) rob: Rob,
    pub(crate) iq: IssueQueue,
    pub(crate) rat: Rat,
    pub(crate) int_free: FreeList,
    pub(crate) fp_free: FreeList,
    pub(crate) lq: LoadQueue,
    pub(crate) sq: StoreQueue,
    pub(crate) memdep: MemDepPredictor,
    pub(crate) fu: FuPool,
    /// Reused by the issue stage for the per-cycle selection, so the hot
    /// loop never allocates.
    pub(crate) issue_scratch: Vec<IqEntry>,
    pub(crate) inflight: HashMap<u64, InFlight>,
    pub(crate) completed_regs: HashSet<PhysReg>,
    pub(crate) released_parked_regs: HashMap<u64, PhysReg>,
    pub(crate) committed: u64,
    pub(crate) loads_committed: u64,
    pub(crate) stores_committed: u64,
    pub(crate) llc_miss_loads: u64,
    pub(crate) last_commit_cycle: Cycle,
    pub(crate) occupancy: OccupancyReport,
    pub(crate) activity: ActivityCounters,
}

impl PipelineState {
    // --- register helpers ---------------------------------------------------

    pub(crate) fn alloc_dest(&mut self, class: RegClass) -> Option<PhysReg> {
        match class {
            RegClass::Int => self.int_free.allocate(),
            RegClass::Fp => self
                .fp_free
                .allocate()
                .map(|p| PhysReg::new(p.index() as u32 + FP_PHYS_OFFSET)),
        }
    }

    pub(crate) fn can_alloc_beyond_reserve(&self, class: RegClass, reserve: usize) -> bool {
        match class {
            RegClass::Int => self.int_free.can_allocate_beyond_reserve(reserve),
            RegClass::Fp => self.fp_free.can_allocate_beyond_reserve(reserve),
        }
    }

    pub(crate) fn free_dest(&mut self, reg: PhysReg) {
        self.completed_regs.remove(&reg);
        if (reg.index() as u32) >= FP_PHYS_OFFSET {
            self.fp_free
                .free(PhysReg::new(reg.index() as u32 - FP_PHYS_OFFSET));
        } else {
            self.int_free.free(reg);
        }
    }

    pub(crate) fn is_seq_done(&self, seq: SeqNum) -> bool {
        self.rob.get(seq).map(|e| e.is_completed()).unwrap_or(true)
    }

    pub(crate) fn resolve_sources(
        &self,
        inst: &DynInst,
    ) -> (InlineVec<PhysReg, 4>, InlineVec<SeqNum, 2>) {
        let mut phys = InlineVec::new();
        let mut seqs = InlineVec::new();
        for src in inst.static_inst().dataflow_srcs() {
            match self.rat.source(src) {
                RegSource::Ready => {}
                RegSource::Phys(p) => {
                    if !self.completed_regs.contains(&p) {
                        phys.push(p);
                    }
                }
                RegSource::Parked(s) => {
                    if !self.is_seq_done(s) {
                        seqs.push(s);
                    }
                }
            }
        }
        (phys, seqs)
    }

    // --- release-reserve predicates (§5.4) ----------------------------------

    /// Whether `entry` is the oldest instruction in the machine (the ROB
    /// head). The last free register of a class is reserved for the head so
    /// that younger releases can never starve it (§5.4's "we always pick the
    /// oldest instruction").
    pub(crate) fn is_rob_head(&self, entry: &RobEntry) -> bool {
        self.rob.head().map(|h| h.seq) == Some(entry.seq)
    }

    /// Register-availability check for placing a released instruction: a
    /// non-head release must leave at least one register of the class free
    /// for the (current or future) ROB head.
    pub(crate) fn release_reg_available(&self, entry: &RobEntry) -> bool {
        let Some(dst) = entry.dst else { return true };
        let available = match dst.class() {
            RegClass::Int => self.int_free.available(),
            RegClass::Fp => self.fp_free.available(),
        };
        if self.is_rob_head(entry) {
            available > 0
        } else {
            available > 1
        }
    }

    /// Whether a *forced* release (deadlock-avoidance path) can be placed:
    /// it only needs a destination register (drawn from the §5.4 reserve) and,
    /// when LQ/SQ allocation is delayed, a memory-queue entry; the IQ is
    /// bypassed through the reserved slot.
    pub(crate) fn can_force_release(&self, entry: &RobEntry) -> bool {
        if !self.release_reg_available(entry) {
            return false;
        }
        self.release_lsq_available(entry)
    }

    /// LQ/SQ-availability check for releases when allocation is delayed: the
    /// last entry of each queue is reserved for the ROB head.
    pub(crate) fn release_lsq_available(&self, entry: &RobEntry) -> bool {
        if !self.cfg.delay_lsq_alloc {
            return true;
        }
        let head = self.is_rob_head(entry);
        if entry.op.is_load() && !entry.holds_lq {
            let ok = if head {
                self.lq.has_space()
            } else {
                self.lq.has_space_beyond_reserve(1)
            };
            if !ok {
                return false;
            }
        }
        if entry.op.is_store() && !entry.holds_sq {
            let ok = if head {
                self.sq.has_space()
            } else {
                self.sq.has_space_beyond_reserve(1)
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Whether the resources needed to place a released parked instruction
    /// are available right now.
    pub(crate) fn can_place_released(&self, entry: &RobEntry) -> bool {
        if !self.iq.has_space() {
            return false;
        }
        // Releases may dip into the register reserve (that is what it is
        // for), but only the ROB head may take the very last register (and,
        // with delayed LQ/SQ allocation, the last memory-queue entry).
        if !self.release_reg_available(entry) {
            return false;
        }
        self.release_lsq_available(entry)
    }

    // --- per-cycle sampling -------------------------------------------------

    pub(crate) fn sample_occupancy(&mut self) {
        let occ = &mut self.occupancy;
        occ.iq.sample_cycle(self.iq.len() as u64);
        occ.rob.sample_cycle(self.rob.len() as u64);
        occ.lq.sample_cycle(self.lq.len() as u64);
        occ.sq.sample_cycle(self.sq.len() as u64);
        occ.regs
            .sample_cycle((self.int_free.allocated() + self.fp_free.allocated()) as u64);
        occ.ltp.sample_cycle(self.ltp.occupancy() as u64);
        occ.ltp_regs.sample_cycle(self.ltp.parked_writers() as u64);
        occ.ltp_loads.sample_cycle(self.ltp.parked_loads() as u64);
        occ.ltp_stores.sample_cycle(self.ltp.parked_stores() as u64);
        occ.outstanding_misses
            .sample_cycle(self.mem.outstanding_misses(self.now) as u64);
    }
}
