//! # ltp-pipeline
//!
//! A cycle-level, trace-driven out-of-order core model with Long Term Parking
//! (LTP) integration — the simulation substrate of the LTP reproduction.
//!
//! The model implements the structures whose sizes the paper studies
//! (Table 1): an 8-wide front end, rename with a register allocation table
//! and per-class free lists, a 256-entry ROB, an issue queue with
//! wakeup/select, load and store queues, a functional unit pool, a gshare
//! branch predictor and a three-level cache hierarchy with a stride
//! prefetcher and a DDR3-like DRAM model (from [`ltp_mem`]). The LTP unit
//! ([`ltp_core::LtpUnit`]) is driven from the rename, execute and commit
//! stages exactly as described in §5 of the paper.
//!
//! The main entry points are [`PipelineConfig`] (the machine description) and
//! [`Processor`] (the simulator). A run consumes an
//! [`ltp_isa::InstStream`] and produces a [`RunResult`] with CPI, MLP,
//! occupancy and LTP statistics.
//!
//! # Example
//!
//! ```
//! use ltp_pipeline::{PipelineConfig, Processor};
//! use ltp_isa::{ArchReg, DynInst, OpClass, Pc, StaticInst, VecStream};
//!
//! let insts: Vec<DynInst> = (0..100)
//!     .map(|s| {
//!         DynInst::new(
//!             s,
//!             StaticInst::new(Pc(0x400 + 4 * (s % 8)), OpClass::IntAlu)
//!                 .with_dst(ArchReg::int((s % 8 + 1) as usize)),
//!         )
//!     })
//!     .collect();
//! let mut cpu = Processor::new(PipelineConfig::micro2015_baseline());
//! let result = cpu.run(VecStream::new("quick", insts), 1_000).expect("no deadlock");
//! assert_eq!(result.instructions, 100);
//! assert!(result.ipc() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod branch;
mod config;
mod core;
mod free_list;
mod frontend;
mod fu;
mod iq;
mod lsq;
mod rat;
mod result;
mod rob;
mod sampling;
mod snapshot;
mod stages;
mod state;
#[cfg(test)]
mod tests;

pub use branch::{BranchPredictor, PredictorGeometry};
pub use config::{
    ClassifierTraining, DetailConfig, FuCounts, PipelineConfig, SharePolicy, SmtConfig,
    WarmupConfig,
};
pub use core::{CycleView, Processor, RegFileSnapshot};
pub use free_list::FreeList;
pub use frontend::{FrontEnd, FrontEndState};
pub use fu::FuPool;
pub use iq::{IqEntry, IssueQueue};
pub use lsq::{LoadQueue, MemDepPredictor, StoreQueue};
pub use rat::{Rat, RegSource};
pub use result::{
    ActivityCounters, DeadlockSnapshot, OccupancyReport, RunError, RunResult, SmtRunResult,
};
pub use rob::{Rob, RobEntry, RobState};
pub use sampling::{FunctionalFastForward, FunctionalWarmState};
pub use snapshot::{ResumedRun, Snapshot, SnapshotError};
pub use stages::{CommitSlot, StageBus, TimingWheel};
