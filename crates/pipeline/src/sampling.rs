//! Functional warm-up mode for sampled simulation.
//!
//! Interval sampling (SMARTS-style) needs a way to move *between* detailed
//! samples that is much cheaper than detailed simulation but keeps the
//! long-lived microarchitectural state warm. [`FunctionalFastForward`]
//! provides that mode: it replays the trace **functionally** — cache contents
//! via [`ltp_mem::MemoryHierarchy::warm_observing`], the gshare branch
//! predictor, and the LTP unit's learned state (UIT insertions, hit/miss
//! predictor training and the on/off monitor via
//! [`ltp_core::LtpUnit::on_load_outcome`]) — without modelling any pipeline
//! timing, at an order of magnitude above detailed-simulation speed.
//!
//! At any instruction boundary [`FunctionalFastForward::checkpoint`] emits a
//! [`Snapshot`] with an **empty pipeline** over the warm state: the detailed
//! interval simulation resumes from it, runs a short detailed warm-up to fill
//! the window structures, and then measures. Unlike a mid-run detailed
//! checkpoint this is an approximation (the pipeline starts drained and the
//! clock advances one cycle per instruction during fast-forward); the
//! `experiments sample` harness measures the resulting IPC error, which is
//! within a couple of percent on the bundled kernels.

use crate::branch::BranchPredictor;
use crate::config::{ClassifierTraining, PipelineConfig};
use crate::snapshot::{Snapshot, SnapshotError};
use crate::Processor;
use ltp_core::LoadOutcome;
use ltp_isa::{DecodedTrace, DynInst};
use ltp_mem::{AccessKind, Cycle, MemoryRequest};

/// Functional (no-timing) machine state advanced between detailed samples.
#[derive(Debug)]
pub struct FunctionalFastForward {
    cpu: Processor,
    predictor: BranchPredictor,
    consumed: u64,
    llc_misses: u64,
    // Scratch buffers reused across `advance_on` calls so the hot functional
    // loop allocates nothing after the first interval.
    mem_out_scratch: Vec<bool>,
    ltp_scratch: Vec<LoadOutcome>,
}

impl FunctionalFastForward {
    /// Creates the functional machine for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or SMT-configured
    /// (sampling drives single-thread points).
    #[must_use]
    pub fn new(cfg: PipelineConfig) -> FunctionalFastForward {
        assert!(
            !cfg.smt.is_smt(),
            "functional fast-forward drives single-threaded machines"
        );
        // Reuse the full constructor so the LTP monitor timeout and every
        // derived parameter match the detailed machine exactly.
        let cpu = Processor::new(cfg);
        FunctionalFastForward {
            cpu,
            predictor: BranchPredictor::default_sized(),
            consumed: 0,
            llc_misses: 0,
            mem_out_scratch: Vec::new(),
            ltp_scratch: Vec::new(),
        }
    }

    /// Replays a cache-warming trace through the functional hierarchy
    /// without advancing the trace position or touching the predictors — the
    /// same pre-run cache-warming discipline detailed simulation points use.
    pub fn warm_caches(&mut self, warm: &[DynInst]) {
        self.cpu.warm_caches(warm);
    }

    /// Instructions consumed so far (the trace position of the next
    /// checkpoint).
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Functional LLC misses observed since the last
    /// [`FunctionalFastForward::take_llc_misses`] call — the sampled runner's
    /// per-interval cost estimate for LPT scheduling.
    pub fn take_llc_misses(&mut self) -> u64 {
        std::mem::take(&mut self.llc_misses)
    }

    /// Advances the functional machine over one instruction: caches, branch
    /// predictor and LTP classifier/monitor state are updated; nothing else.
    /// The functional clock advances one cycle per instruction.
    pub fn feed(&mut self, inst: &DynInst) {
        let now: Cycle = self.consumed;
        if let Some(branch) = inst.branch_info() {
            let _ = self.predictor.predict_and_update(inst.pc(), branch.taken);
        }
        if let Some(access) = inst.mem_access() {
            let kind = if inst.op().is_store() {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let missed_llc = self.cpu.state.mem.warm_with_prefetch(&MemoryRequest::new(
                inst.pc(),
                access.addr(),
                kind,
            ));
            if missed_llc {
                self.llc_misses += 1;
            }
            if inst.op().is_load() {
                // Keep UIT learning, hit/miss predictor training and the
                // on/off monitor warm across the fast-forward gap.
                self.cpu
                    .state
                    .thread
                    .ltp
                    .on_load_outcome(inst.pc(), missed_llc, now);
            }
        }
        self.consumed += 1;
    }

    /// Feeds a slice of instructions (see [`FunctionalFastForward::feed`]).
    pub fn feed_all(&mut self, insts: &[DynInst]) {
        for inst in insts {
            self.feed(inst);
        }
    }

    /// Advances the functional machine from its current position to absolute
    /// trace position `target` using a pre-decoded trace — the decode-once /
    /// execute-many fast path.
    ///
    /// Instead of interpreting each [`DynInst`] (branch? memory op? load or
    /// store?) on every pass, the [`DecodedTrace`] resolved those questions
    /// once up front into flat per-kind event lists keyed by absolute
    /// instruction index. Straight-line runs of non-memory, non-branch
    /// instructions occupy no events at all, so the functional clock crosses
    /// them in one batched step. The three pieces of functional state are
    /// disjoint machines — the cache hierarchy + prefetcher see only memory
    /// operations in order, the gshare predictor only branches in order, and
    /// the LTP unit only load outcomes stamped with the instruction index —
    /// so running one batched pass per kind produces **bit-identical** state
    /// to the interleaved per-instruction [`FunctionalFastForward::feed`]
    /// loop (the differential tests below and `tests/sampled_stream.rs` hold
    /// the two paths to byte-identical checkpoints).
    ///
    /// # Panics
    ///
    /// Panics if `target` is behind the current position or beyond the
    /// decoded trace's length.
    pub fn advance_on(&mut self, dec: &DecodedTrace, target: u64) {
        let start = self.consumed;
        assert!(
            target >= start,
            "cannot rewind the functional machine: at {start}, asked for {target}"
        );
        assert!(
            target <= dec.len(),
            "target {target} beyond decoded trace of {} instructions",
            dec.len()
        );
        if target == start {
            return;
        }

        // Memory pass: one batched walk of the hierarchy over every memory
        // event in [start, target), LLC-miss outcome per event.
        let mem_events = dec.mem_events_in(start, target);
        let mut outcomes = std::mem::take(&mut self.mem_out_scratch);
        outcomes.clear();
        self.cpu.state.mem.warm_with_prefetch_batch(
            mem_events.iter().map(|e| {
                let kind = if e.is_store {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                MemoryRequest::new(e.pc, e.addr, kind)
            }),
            &mut outcomes,
        );

        // LTP pass: misses count for every memory op (matching `feed`), but
        // only loads train the classifier/monitor, stamped with the
        // instruction index as the functional clock.
        let mut loads = std::mem::take(&mut self.ltp_scratch);
        loads.clear();
        for (e, &missed_llc) in mem_events.iter().zip(&outcomes) {
            if missed_llc {
                self.llc_misses += 1;
            }
            if e.is_load() {
                loads.push(LoadOutcome {
                    pc: e.pc,
                    missed_llc,
                    now: e.idx,
                });
            }
        }
        self.cpu.state.thread.ltp.on_load_outcomes(&loads);

        // Branch pass: batched gshare training in program order.
        self.predictor.train_batch(
            dec.branch_events_in(start, target)
                .iter()
                .map(|e| (e.pc, e.taken)),
        );

        self.mem_out_scratch = outcomes;
        self.ltp_scratch = loads;
        self.consumed = target;
    }

    /// Emits an empty-pipeline checkpoint at the current trace position: the
    /// warm caches, predictors and LTP learned state over a drained pipeline
    /// whose committed count equals the instructions consumed, so a resumed
    /// detailed run continues at the right trace offset with correctly
    /// aligned sequence numbers.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::ClassifierUnsupported`] for custom
    /// classifiers without snapshot support.
    pub fn checkpoint(&self) -> Result<Snapshot, SnapshotError> {
        let mut cpu = Processor::new(self.cpu.state.cfg);
        let now = self.consumed;
        cpu.state.now = now;
        cpu.state.mem = self.cpu.state.mem.clone();
        cpu.state.thread.ltp = self.cpu.state.thread.ltp.clone();
        cpu.state.thread.committed = self.consumed;
        cpu.state.thread.last_commit_cycle = now;
        let frontend = crate::frontend::FrontEndState {
            pipe: std::collections::VecDeque::new(),
            redirect_until: 0,
            exhausted: false,
            fetched: self.consumed,
            predictor: self.predictor.clone(),
        };
        // Statistics start at the checkpoint; the sampled runner narrows the
        // window further with `ResumedRun::run_measured_from`.
        Snapshot::capture(&cpu, frontend, None, Some((now, self.consumed)))
    }

    /// Captures the **detail-independent** warm state at the current trace
    /// position: everything the functional pass has trained — cache
    /// hierarchy, branch predictor, classifier learning and the on/off
    /// monitor — plus the trace position itself. Unlike
    /// [`FunctionalFastForward::checkpoint`], the result embeds no
    /// [`PipelineConfig`]: it can be restored under *any* configuration
    /// whose [`WarmupConfig`](crate::WarmupConfig) half equals this
    /// machine's, and [`FunctionalFastForward::from_warm_state`] then
    /// rebuilds a fast-forward whose checkpoints are byte-identical to ones
    /// a cold fast-forward of that configuration would have produced.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::ClassifierUnsupported`] when the
    /// configuration trains a classifier that cannot export its state.
    pub fn warm_state(&self) -> Result<FunctionalWarmState, SnapshotError> {
        let ltp = &self.cpu.state.thread.ltp;
        let classifier = match ClassifierTraining::of(&self.cpu.state.cfg.ltp) {
            ClassifierTraining::Trained { .. } => Some(
                ltp.classifier_state()
                    .ok_or(SnapshotError::ClassifierUnsupported)?,
            ),
            ClassifierTraining::Inert => None,
        };
        Ok(FunctionalWarmState {
            consumed: self.consumed,
            mem: self.cpu.state.mem.clone(),
            predictor: self.predictor.clone(),
            monitor: ltp.monitor_state(),
            classifier,
        })
    }

    /// Rebuilds a functional machine for `cfg` positioned at a previously
    /// captured warm state, bypassing the trace replay entirely. The caller
    /// guarantees the state was captured under a configuration with the same
    /// [`WarmupConfig`](crate::WarmupConfig) half (checkpoint caches key on
    /// exactly that); the classifier payload is checked here.
    ///
    /// The per-interval LLC-miss counter restarts at zero — a cache-hit
    /// path gets interval weights from wherever it got the warm state.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is SMT-configured or if the state's classifier
    /// payload does not match `cfg`'s training projection (present for an
    /// inert configuration or missing for a training one).
    #[must_use]
    pub fn from_warm_state(
        cfg: PipelineConfig,
        state: FunctionalWarmState,
    ) -> FunctionalFastForward {
        let mut ff = FunctionalFastForward::new(cfg);
        ff.cpu.state.mem = state.mem;
        ff.cpu.state.thread.ltp.restore_monitor_state(state.monitor);
        match (ClassifierTraining::of(&cfg.ltp), state.classifier) {
            (ClassifierTraining::Trained { .. }, Some(cs)) => {
                ff.cpu.state.thread.ltp.restore_classifier_state(cs);
            }
            (ClassifierTraining::Inert, None) => {}
            (ClassifierTraining::Trained { .. }, None) => {
                panic!("warm state has no classifier payload but the configuration trains one")
            }
            (ClassifierTraining::Inert, Some(_)) => {
                panic!("warm state carries classifier training the configuration cannot use")
            }
        }
        ff.predictor = state.predictor.clone();
        ff.consumed = state.consumed;
        ff
    }
}

/// Detail-independent functional warm state: what
/// [`FunctionalFastForward::warm_state`] captures and
/// [`FunctionalFastForward::from_warm_state`] restores. Serialisable with
/// the snapshot codec (the checkpoint cache's entry payload).
#[derive(Debug, Clone)]
pub struct FunctionalWarmState {
    pub(crate) consumed: u64,
    pub(crate) mem: ltp_mem::MemoryHierarchy,
    pub(crate) predictor: BranchPredictor,
    pub(crate) monitor: ltp_core::DramTimerMonitor,
    pub(crate) classifier: Option<ltp_core::ClassifierState>,
}

impl FunctionalWarmState {
    /// Trace position of the captured state.
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Whether the state carries trained-classifier payload. Restoring under
    /// a configuration whose [`ClassifierTraining`] projection disagrees
    /// panics, so cache consumers check this before calling
    /// [`FunctionalFastForward::from_warm_state`].
    #[must_use]
    pub fn has_classifier_state(&self) -> bool {
        self.classifier.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltp_isa::{ArchReg, BranchInfo, MemAccess, OpClass, Pc, SliceStream, StaticInst};

    /// A trace mixing every event kind the functional machine reacts to:
    /// strided and pseudo-random loads, stores, loop-like and data-dependent
    /// branches, and straight-line ALU stretches that decode to no events.
    fn mixed_trace(n: u64) -> Vec<DynInst> {
        let mut x = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                match i % 7 {
                    0 | 3 => DynInst::new(
                        i,
                        StaticInst::new(Pc(0x400 + (i % 24) * 4), OpClass::Load)
                            .with_dst(ArchReg::int(((i % 6) + 1) as usize))
                            .with_src(ArchReg::int(1)),
                    )
                    .with_mem(MemAccess::qword(0x20_000 + (i * 8191) % 600_000)),
                    1 => DynInst::new(
                        i,
                        StaticInst::new(Pc(0x500 + (i % 8) * 4), OpClass::Store)
                            .with_src(ArchReg::int(2)),
                    )
                    .with_mem(MemAccess::qword(0x80_000 + (x % 300_000))),
                    2 => DynInst::new(i, StaticInst::new(Pc(0x600 + (i % 4) * 4), OpClass::Branch))
                        .with_branch(BranchInfo {
                            taken: (i % 5 != 0) ^ ((x >> 33) & 1 == 1),
                            target: Pc(0x400),
                        }),
                    _ => DynInst::new(
                        i,
                        StaticInst::new(Pc(0x700 + (i % 12) * 4), OpClass::IntAlu)
                            .with_dst(ArchReg::int(((i % 5) + 1) as usize))
                            .with_src(ArchReg::int(3)),
                    ),
                }
            })
            .collect()
    }

    #[test]
    fn decoded_advance_matches_feed_byte_identically() {
        let trace = mixed_trace(6_000);
        let dec = DecodedTrace::from_insts(&trace);
        let cfg = PipelineConfig::ltp_proposed();

        let mut reference = FunctionalFastForward::new(cfg);
        let mut decoded = FunctionalFastForward::new(cfg);

        // Advance in deliberately uneven chunks (including an empty one) and
        // compare against the per-instruction reference at each boundary.
        let boundaries = [0u64, 1, 137, 137, 1_338, 4_099, 6_000];
        let mut pos = 0u64;
        for &b in &boundaries {
            reference.feed_all(&trace[pos as usize..b as usize]);
            decoded.advance_on(&dec, b);
            pos = b;
            assert_eq!(decoded.consumed(), reference.consumed());

            let ref_bytes = reference.checkpoint().expect("ref checkpoint").to_bytes();
            let dec_bytes = decoded.checkpoint().expect("dec checkpoint").to_bytes();
            assert_eq!(ref_bytes, dec_bytes, "checkpoint diverged at boundary {b}");
        }
        assert_eq!(
            decoded.take_llc_misses(),
            reference.take_llc_misses(),
            "LPT cost estimate must match"
        );
    }

    #[test]
    fn decoded_advance_llc_misses_count_stores_too() {
        // Stores that miss the LLC must contribute to the interval weight
        // exactly as in `feed` (which counts every missing memory op).
        let trace: Vec<DynInst> = (0..512u64)
            .map(|i| {
                DynInst::new(
                    i,
                    StaticInst::new(Pc(0x500), OpClass::Store).with_src(ArchReg::int(2)),
                )
                .with_mem(MemAccess::qword(0x100_000 + i * 4096))
            })
            .collect();
        let dec = DecodedTrace::from_insts(&trace);
        let cfg = PipelineConfig::ltp_proposed();

        let mut reference = FunctionalFastForward::new(cfg);
        reference.feed_all(&trace);
        let mut decoded = FunctionalFastForward::new(cfg);
        decoded.advance_on(&dec, dec.len());

        let want = reference.take_llc_misses();
        assert!(want > 0, "cold stores must miss");
        assert_eq!(decoded.take_llc_misses(), want);
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn decoded_advance_rejects_rewind() {
        let trace = mixed_trace(64);
        let dec = DecodedTrace::from_insts(&trace);
        let mut ff = FunctionalFastForward::new(PipelineConfig::ltp_proposed());
        ff.advance_on(&dec, 32);
        ff.advance_on(&dec, 16);
    }

    fn mem_trace(n: u64) -> Vec<DynInst> {
        (0..n)
            .map(|i| {
                DynInst::new(
                    i,
                    StaticInst::new(Pc(0x400 + (i % 16) * 4), OpClass::Load)
                        .with_dst(ArchReg::int(((i % 6) + 1) as usize))
                        .with_src(ArchReg::int(1)),
                )
                .with_mem(MemAccess::qword(0x20_000 + (i * 8191) % 400_000))
            })
            .collect()
    }

    #[test]
    fn fast_forward_warms_caches_and_positions_the_stream() {
        let trace = mem_trace(2_000);
        let cfg = PipelineConfig::ltp_proposed();
        let mut ff = FunctionalFastForward::new(cfg);
        ff.feed_all(&trace[..1_000]);
        assert_eq!(ff.consumed(), 1_000);
        assert!(ff.take_llc_misses() > 0);
        assert_eq!(ff.take_llc_misses(), 0, "counter is take-and-reset");

        let snap = ff.checkpoint().expect("checkpointable");
        assert_eq!(snap.committed(), 1_000);
        assert_eq!(snap.fetched(), 1_000);

        // The resumed interval commits exactly the remaining instructions,
        // measured from the checkpoint.
        let result = snap
            .resume()
            .run(SliceStream::new("ff", &trace), 2_000)
            .expect("no deadlock");
        assert_eq!(result.instructions, 1_000);
        assert!(result.cycles > 0);
    }

    #[test]
    fn measured_window_excludes_detailed_warmup() {
        let trace = mem_trace(3_000);
        let cfg = PipelineConfig::ltp_proposed();
        let mut ff = FunctionalFastForward::new(cfg);
        ff.feed_all(&trace[..1_000]);
        let snap = ff.checkpoint().expect("checkpointable");
        // Warm in detail over [1000, 1500), measure [1500, 3000). The
        // boundary quantizes to the commit that crosses it (same semantics
        // as the configuration's warm-up budget), so the measured count can
        // be short by up to one commit group.
        let result = snap
            .resume()
            .run_measured_from(SliceStream::new("ff", &trace), 3_000, 1_500)
            .expect("no deadlock");
        let commit_width = PipelineConfig::ltp_proposed().commit_width as u64;
        assert!(
            result.instructions <= 1_500 && result.instructions >= 1_500 - commit_width,
            "measured {} instructions",
            result.instructions
        );
    }

    /// The warm-key contract, end to end: warm state captured under one
    /// configuration, restored under a *different* configuration with the
    /// same warm half, yields byte-identical checkpoints to a cold
    /// fast-forward of the second configuration.
    #[test]
    fn warm_state_restores_bit_identically_across_detail_configs() {
        let trace = mixed_trace(6_000);
        let dec = DecodedTrace::from_insts(&trace);
        // Same warm half (mem geometry, Trained{256}); detail halves differ
        // in IQ/registers and even classifier kind (Uit vs Oracle).
        let cfg_a = PipelineConfig::ltp_proposed();
        let cfg_b = PipelineConfig::ltp_proposed()
            .with_iq(256)
            .with_regs(128)
            .with_oracle(true);
        assert_eq!(cfg_a.warmup_config(), cfg_b.warmup_config());

        let mut donor = FunctionalFastForward::new(cfg_a);
        let mut cold = FunctionalFastForward::new(cfg_b);
        for b in [1_024u64, 4_099, 6_000] {
            donor.advance_on(&dec, b);
            cold.advance_on(&dec, b);
            let state = donor.warm_state().expect("warm state");
            assert_eq!(state.consumed(), b);
            assert!(state.has_classifier_state());
            let restored = FunctionalFastForward::from_warm_state(cfg_b, state);
            assert_eq!(
                restored.checkpoint().expect("restored").to_bytes(),
                cold.checkpoint().expect("cold").to_bytes(),
                "restored checkpoint diverged at boundary {b}"
            );
        }
    }

    /// Inert classifiers (here AlwaysReady) carry no classifier payload and
    /// restore bit-identically too.
    #[test]
    fn warm_state_round_trips_inert_classifiers() {
        let trace = mixed_trace(3_000);
        let dec = DecodedTrace::from_insts(&trace);
        let cfg =
            PipelineConfig::ltp_proposed().with_classifier(ltp_core::ClassifierKind::AlwaysReady);
        let mut donor = FunctionalFastForward::new(cfg);
        let mut cold = FunctionalFastForward::new(cfg);
        donor.advance_on(&dec, 3_000);
        cold.advance_on(&dec, 3_000);
        let state = donor.warm_state().expect("warm state");
        assert!(!state.has_classifier_state());
        let restored = FunctionalFastForward::from_warm_state(cfg, state);
        assert_eq!(
            restored.checkpoint().expect("restored").to_bytes(),
            cold.checkpoint().expect("cold").to_bytes()
        );
    }

    /// Restoring under a configuration whose training projection disagrees
    /// with the captured state is a hard error, not silent corruption.
    #[test]
    #[should_panic(expected = "classifier")]
    fn warm_state_rejects_training_mismatch() {
        let trace = mixed_trace(256);
        let dec = DecodedTrace::from_insts(&trace);
        let trained = PipelineConfig::ltp_proposed();
        let mut ff = FunctionalFastForward::new(trained);
        ff.advance_on(&dec, 256);
        let state = ff.warm_state().expect("warm state");
        let inert = trained.with_classifier(ltp_core::ClassifierKind::AlwaysReady);
        let _ = FunctionalFastForward::from_warm_state(inert, state);
    }

    /// The warm state itself survives the snapshot codec byte-exactly: a
    /// decode of its encoding restores the same checkpoints (this is the
    /// path cache entries take through disk).
    #[test]
    fn warm_state_codec_round_trip_preserves_checkpoints() {
        use ltp_snapshot::{encode_value, Codec, Reader};
        let trace = mixed_trace(2_000);
        let dec = DecodedTrace::from_insts(&trace);
        let cfg = PipelineConfig::ltp_proposed();
        let mut ff = FunctionalFastForward::new(cfg);
        ff.advance_on(&dec, 2_000);
        let state = ff.warm_state().expect("warm state");
        let bytes = encode_value(&state);
        let mut r = Reader::new(&bytes);
        let decoded = FunctionalWarmState::read(&mut r).expect("decodes");
        assert_eq!(r.remaining(), 0);
        assert_eq!(
            FunctionalFastForward::from_warm_state(cfg, decoded)
                .checkpoint()
                .expect("decoded")
                .to_bytes(),
            FunctionalFastForward::from_warm_state(cfg, state)
                .checkpoint()
                .expect("original")
                .to_bytes()
        );
    }
}
