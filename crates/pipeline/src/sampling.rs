//! Functional warm-up mode for sampled simulation.
//!
//! Interval sampling (SMARTS-style) needs a way to move *between* detailed
//! samples that is much cheaper than detailed simulation but keeps the
//! long-lived microarchitectural state warm. [`FunctionalFastForward`]
//! provides that mode: it replays the trace **functionally** — cache contents
//! via [`ltp_mem::MemoryHierarchy::warm_observing`], the gshare branch
//! predictor, and the LTP unit's learned state (UIT insertions, hit/miss
//! predictor training and the on/off monitor via
//! [`ltp_core::LtpUnit::on_load_outcome`]) — without modelling any pipeline
//! timing, at an order of magnitude above detailed-simulation speed.
//!
//! At any instruction boundary [`FunctionalFastForward::checkpoint`] emits a
//! [`Snapshot`] with an **empty pipeline** over the warm state: the detailed
//! interval simulation resumes from it, runs a short detailed warm-up to fill
//! the window structures, and then measures. Unlike a mid-run detailed
//! checkpoint this is an approximation (the pipeline starts drained and the
//! clock advances one cycle per instruction during fast-forward); the
//! `experiments sample` harness measures the resulting IPC error, which is
//! within a couple of percent on the bundled kernels.

use crate::branch::BranchPredictor;
use crate::config::PipelineConfig;
use crate::snapshot::{Snapshot, SnapshotError};
use crate::Processor;
use ltp_isa::DynInst;
use ltp_mem::{AccessKind, Cycle, MemoryRequest};

/// Functional (no-timing) machine state advanced between detailed samples.
#[derive(Debug)]
pub struct FunctionalFastForward {
    cpu: Processor,
    predictor: BranchPredictor,
    consumed: u64,
    llc_misses: u64,
}

impl FunctionalFastForward {
    /// Creates the functional machine for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or SMT-configured
    /// (sampling drives single-thread points).
    #[must_use]
    pub fn new(cfg: PipelineConfig) -> FunctionalFastForward {
        assert!(
            !cfg.smt.is_smt(),
            "functional fast-forward drives single-threaded machines"
        );
        // Reuse the full constructor so the LTP monitor timeout and every
        // derived parameter match the detailed machine exactly.
        let cpu = Processor::new(cfg);
        FunctionalFastForward {
            cpu,
            predictor: BranchPredictor::default_sized(),
            consumed: 0,
            llc_misses: 0,
        }
    }

    /// Replays a cache-warming trace through the functional hierarchy
    /// without advancing the trace position or touching the predictors — the
    /// same pre-run cache-warming discipline detailed simulation points use.
    pub fn warm_caches(&mut self, warm: &[DynInst]) {
        self.cpu.warm_caches(warm);
    }

    /// Instructions consumed so far (the trace position of the next
    /// checkpoint).
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Functional LLC misses observed since the last
    /// [`FunctionalFastForward::take_llc_misses`] call — the sampled runner's
    /// per-interval cost estimate for LPT scheduling.
    pub fn take_llc_misses(&mut self) -> u64 {
        std::mem::take(&mut self.llc_misses)
    }

    /// Advances the functional machine over one instruction: caches, branch
    /// predictor and LTP classifier/monitor state are updated; nothing else.
    /// The functional clock advances one cycle per instruction.
    pub fn feed(&mut self, inst: &DynInst) {
        let now: Cycle = self.consumed;
        if let Some(branch) = inst.branch_info() {
            let _ = self.predictor.predict_and_update(inst.pc(), branch.taken);
        }
        if let Some(access) = inst.mem_access() {
            let kind = if inst.op().is_store() {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let missed_llc = self.cpu.state.mem.warm_with_prefetch(&MemoryRequest::new(
                inst.pc(),
                access.addr(),
                kind,
            ));
            if missed_llc {
                self.llc_misses += 1;
            }
            if inst.op().is_load() {
                // Keep UIT learning, hit/miss predictor training and the
                // on/off monitor warm across the fast-forward gap.
                self.cpu
                    .state
                    .thread
                    .ltp
                    .on_load_outcome(inst.pc(), missed_llc, now);
            }
        }
        self.consumed += 1;
    }

    /// Feeds a slice of instructions (see [`FunctionalFastForward::feed`]).
    pub fn feed_all(&mut self, insts: &[DynInst]) {
        for inst in insts {
            self.feed(inst);
        }
    }

    /// Emits an empty-pipeline checkpoint at the current trace position: the
    /// warm caches, predictors and LTP learned state over a drained pipeline
    /// whose committed count equals the instructions consumed, so a resumed
    /// detailed run continues at the right trace offset with correctly
    /// aligned sequence numbers.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::ClassifierUnsupported`] for custom
    /// classifiers without snapshot support.
    pub fn checkpoint(&self) -> Result<Snapshot, SnapshotError> {
        let mut cpu = Processor::new(self.cpu.state.cfg);
        let now = self.consumed;
        cpu.state.now = now;
        cpu.state.mem = self.cpu.state.mem.clone();
        cpu.state.thread.ltp = self.cpu.state.thread.ltp.clone();
        cpu.state.thread.committed = self.consumed;
        cpu.state.thread.last_commit_cycle = now;
        let frontend = crate::frontend::FrontEndState {
            pipe: std::collections::VecDeque::new(),
            redirect_until: 0,
            exhausted: false,
            fetched: self.consumed,
            predictor: self.predictor.clone(),
        };
        // Statistics start at the checkpoint; the sampled runner narrows the
        // window further with `ResumedRun::run_measured_from`.
        Snapshot::capture(&cpu, frontend, None, Some((now, self.consumed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltp_isa::{ArchReg, MemAccess, OpClass, Pc, SliceStream, StaticInst};

    fn mem_trace(n: u64) -> Vec<DynInst> {
        (0..n)
            .map(|i| {
                DynInst::new(
                    i,
                    StaticInst::new(Pc(0x400 + (i % 16) * 4), OpClass::Load)
                        .with_dst(ArchReg::int(((i % 6) + 1) as usize))
                        .with_src(ArchReg::int(1)),
                )
                .with_mem(MemAccess::qword(0x20_000 + (i * 8191) % 400_000))
            })
            .collect()
    }

    #[test]
    fn fast_forward_warms_caches_and_positions_the_stream() {
        let trace = mem_trace(2_000);
        let cfg = PipelineConfig::ltp_proposed();
        let mut ff = FunctionalFastForward::new(cfg);
        ff.feed_all(&trace[..1_000]);
        assert_eq!(ff.consumed(), 1_000);
        assert!(ff.take_llc_misses() > 0);
        assert_eq!(ff.take_llc_misses(), 0, "counter is take-and-reset");

        let snap = ff.checkpoint().expect("checkpointable");
        assert_eq!(snap.committed(), 1_000);
        assert_eq!(snap.fetched(), 1_000);

        // The resumed interval commits exactly the remaining instructions,
        // measured from the checkpoint.
        let result = snap
            .resume()
            .run(SliceStream::new("ff", &trace), 2_000)
            .expect("no deadlock");
        assert_eq!(result.instructions, 1_000);
        assert!(result.cycles > 0);
    }

    #[test]
    fn measured_window_excludes_detailed_warmup() {
        let trace = mem_trace(3_000);
        let cfg = PipelineConfig::ltp_proposed();
        let mut ff = FunctionalFastForward::new(cfg);
        ff.feed_all(&trace[..1_000]);
        let snap = ff.checkpoint().expect("checkpointable");
        // Warm in detail over [1000, 1500), measure [1500, 3000). The
        // boundary quantizes to the commit that crosses it (same semantics
        // as the configuration's warm-up budget), so the measured count can
        // be short by up to one commit group.
        let result = snap
            .resume()
            .run_measured_from(SliceStream::new("ff", &trace), 3_000, 1_500)
            .expect("no deadlock");
        let commit_width = PipelineConfig::ltp_proposed().commit_width as u64;
        assert!(
            result.instructions <= 1_500 && result.instructions >= 1_500 - commit_width,
            "measured {} instructions",
            result.instructions
        );
    }
}
