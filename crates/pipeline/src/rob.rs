//! The reorder buffer.
//!
//! Every instruction — parked or not — allocates a ROB entry at rename so
//! that commit stays in order ("while the parked instructions have not been
//! placed in the IQ, they have been allocated an entry in the ROB to ensure
//! in-order commit", §3). The ROB is also where the LTP wakeup boundary is
//! computed: Non-Urgent instructions between the head and the *second*
//! long-latency instruction in the ROB are woken (§3.2, §5.2).

use crate::rat::RegSource;
use ltp_isa::{ArchReg, OpClass, Pc, PhysReg, SeqNum};
use ltp_mem::Cycle;
use std::collections::VecDeque;

/// Execution state of a ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobState {
    /// Parked in LTP; not yet dispatched to the IQ.
    Parked,
    /// Dispatched to the IQ, waiting for operands / issue.
    InQueue,
    /// Issued to a functional unit; completion scheduled.
    Executing,
    /// Result produced; eligible for commit when it reaches the head.
    Completed,
}

/// One reorder buffer entry.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Sequence number of the instruction.
    pub seq: SeqNum,
    /// Its PC (needed for UIT updates at commit).
    pub pc: Pc,
    /// Operation class.
    pub op: OpClass,
    /// Current state.
    pub state: RobState,
    /// Destination architectural register, if any.
    pub dst: Option<ArchReg>,
    /// Physical register allocated for the destination (None while parked).
    pub dest_phys: Option<PhysReg>,
    /// Previous mapping of the destination register, freed at commit.
    pub prev_mapping: RegSource,
    /// Whether this instruction is long-latency (LLC-missing load, divide,
    /// square root) — discovered at issue/execute time for loads.
    pub long_latency: bool,
    /// Whether the instruction currently holds an LQ entry.
    pub holds_lq: bool,
    /// Whether the instruction currently holds an SQ entry.
    pub holds_sq: bool,
    /// Whether it was parked in LTP at rename (for statistics).
    pub was_parked: bool,
    /// Cycle at which execution completes (valid once `Executing`).
    pub completion_cycle: Cycle,
}

impl RobEntry {
    /// Whether the entry has completed execution.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        self.state == RobState::Completed
    }
}

/// The reorder buffer: a bounded FIFO of [`RobEntry`].
///
/// Sequence numbers are dense along the trace and every renamed instruction
/// pushes an entry, so an entry's slot is arithmetically derivable from its
/// sequence number (`seq - head.seq`) — [`Rob::get`] / [`Rob::get_mut`] are
/// O(1) rather than a search. The §3.2 Non-Urgent wakeup boundary is served
/// from `ll_incomplete`, a sorted index of incomplete long-latency entries
/// maintained incrementally by [`Rob::push`], [`Rob::mark_issued`],
/// [`Rob::complete`] and [`Rob::try_commit`], so the per-cycle boundary query
/// no longer scans the whole window.
#[derive(Debug, Clone)]
pub struct Rob {
    pub(crate) capacity: usize,
    pub(crate) entries: VecDeque<RobEntry>,
    /// Sequence numbers of incomplete long-latency entries, ascending.
    pub(crate) ll_incomplete: Vec<u64>,
}

impl Rob {
    /// Creates an empty ROB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Rob {
        assert!(capacity > 0, "ROB needs at least one entry");
        Rob {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(1024)),
            ll_incomplete: Vec::with_capacity(64),
        }
    }

    /// Slot of the entry with sequence number `seq`, derived arithmetically
    /// from the dense sequence numbering (with a search fallback for
    /// synthetic non-dense test streams).
    fn position_of(&self, seq: SeqNum) -> Option<usize> {
        let front = self.entries.front()?;
        let idx = seq.0.checked_sub(front.seq.0)? as usize;
        if let Some(e) = self.entries.get(idx) {
            if e.seq == seq {
                return Some(idx);
            }
        }
        self.entries.binary_search_by_key(&seq.0, |e| e.seq.0).ok()
    }

    fn ll_insert(&mut self, seq: SeqNum) {
        if let Err(pos) = self.ll_incomplete.binary_search(&seq.0) {
            self.ll_incomplete.insert(pos, seq.0);
        }
    }

    fn ll_remove(&mut self, seq: SeqNum) {
        if let Ok(pos) = self.ll_incomplete.binary_search(&seq.0) {
            self.ll_incomplete.remove(pos);
        }
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROB is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the ROB has room for another instruction.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an entry at the tail (program order).
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full or the entry is out of program order.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(self.has_space(), "pushing into a full ROB");
        if let Some(last) = self.entries.back() {
            assert!(
                last.seq.is_older_than(entry.seq),
                "ROB entries must be pushed in program order"
            );
        }
        if entry.long_latency && !entry.is_completed() {
            self.ll_insert(entry.seq);
        }
        self.entries.push_back(entry);
    }

    /// The oldest entry, if any.
    #[must_use]
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Sequence number just past the youngest entry (wake-everything
    /// boundary when there is no second long-latency instruction).
    #[must_use]
    pub fn tail_boundary(&self) -> SeqNum {
        self.entries
            .back()
            .map(|e| SeqNum(e.seq.0 + 1))
            .unwrap_or(SeqNum(0))
    }

    /// Pops the head if it has completed. Returns the committed entry.
    pub fn try_commit(&mut self) -> Option<RobEntry> {
        if self
            .entries
            .front()
            .map(RobEntry::is_completed)
            .unwrap_or(false)
        {
            let entry = self.entries.pop_front();
            if let Some(e) = &entry {
                // A committing entry is complete, so it normally left the
                // index in `complete`; entries driven to Completed through
                // `get_mut` (tests) are swept here.
                if e.long_latency {
                    self.ll_remove(e.seq);
                }
            }
            entry
        } else {
            None
        }
    }

    /// Marks the entry as issued to a functional unit: state, completion
    /// cycle and (for loads discovered to miss, divides, square roots) the
    /// long-latency flag. Keeps the wakeup-boundary index coherent.
    pub fn mark_issued(&mut self, seq: SeqNum, completion_cycle: Cycle, long_latency: bool) {
        let Some(idx) = self.position_of(seq) else {
            return;
        };
        let e = &mut self.entries[idx];
        e.state = RobState::Executing;
        e.completion_cycle = completion_cycle;
        if long_latency && !e.long_latency {
            e.long_latency = true;
            self.ll_insert(seq);
        }
    }

    /// Marks the entry completed (writeback), removing it from the
    /// wakeup-boundary index, and returns it for inspection.
    pub fn complete(&mut self, seq: SeqNum) -> Option<&RobEntry> {
        let idx = self.position_of(seq)?;
        let e = &mut self.entries[idx];
        e.state = RobState::Completed;
        if e.long_latency {
            self.ll_remove(seq);
        }
        Some(&self.entries[idx])
    }

    /// Mutable access to the entry with sequence number `seq`.
    ///
    /// Callers must not flip `state` to [`RobState::Completed`] or raise
    /// `long_latency` through this handle — use [`Rob::complete`] /
    /// [`Rob::mark_issued`] so the wakeup-boundary index stays coherent.
    pub fn get_mut(&mut self, seq: SeqNum) -> Option<&mut RobEntry> {
        let idx = self.position_of(seq)?;
        self.entries.get_mut(idx)
    }

    /// Shared access to the entry with sequence number `seq`.
    #[must_use]
    pub fn get(&self, seq: SeqNum) -> Option<&RobEntry> {
        let idx = self.position_of(seq)?;
        self.entries.get(idx)
    }

    /// Iterates over entries from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// The LTP Non-Urgent wakeup boundary: the sequence number of the
    /// *second* incomplete long-latency instruction in the ROB. Parked
    /// instructions older than this boundary are woken so that, when the
    /// long-latency instruction blocking the head completes, everything up to
    /// the next stall point is ready to commit (§3.2).
    ///
    /// When fewer than two incomplete long-latency instructions are present
    /// the boundary is one past the ROB tail (wake everything).
    #[must_use]
    pub fn nu_wake_boundary(&self) -> SeqNum {
        let boundary = match self.ll_incomplete.get(1) {
            Some(&seq) => SeqNum(seq),
            None => self.tail_boundary(),
        };
        debug_assert_eq!(
            boundary,
            self.nu_wake_boundary_scan(),
            "incremental long-latency index diverged from the window scan"
        );
        boundary
    }

    /// Reference implementation of the boundary (full window scan), kept for
    /// the debug cross-check above.
    fn nu_wake_boundary_scan(&self) -> SeqNum {
        let mut seen = 0;
        for e in &self.entries {
            if e.long_latency && !e.is_completed() {
                seen += 1;
                if seen == 2 {
                    return e.seq;
                }
            }
        }
        self.tail_boundary()
    }

    /// Number of parked entries currently in the ROB.
    #[must_use]
    pub fn parked_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.state == RobState::Parked)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, long_latency: bool, completed: bool) -> RobEntry {
        RobEntry {
            seq: SeqNum(seq),
            pc: Pc(0x100 + seq * 4),
            op: OpClass::IntAlu,
            state: if completed {
                RobState::Completed
            } else {
                RobState::InQueue
            },
            dst: Some(ArchReg::int(1)),
            dest_phys: None,
            prev_mapping: RegSource::Ready,
            long_latency,
            holds_lq: false,
            holds_sq: false,
            was_parked: false,
            completion_cycle: 0,
        }
    }

    #[test]
    fn push_and_commit_in_order() {
        let mut rob = Rob::new(4);
        rob.push(entry(0, false, true));
        rob.push(entry(1, false, false));
        assert_eq!(rob.len(), 2);
        let c = rob.try_commit().unwrap();
        assert_eq!(c.seq, SeqNum(0));
        // Head not completed: no commit.
        assert!(rob.try_commit().is_none());
        assert_eq!(rob.len(), 1);
    }

    #[test]
    #[should_panic(expected = "full ROB")]
    fn push_into_full_rob_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0, false, false));
        rob.push(entry(1, false, false));
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_push_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(5, false, false));
        rob.push(entry(3, false, false));
    }

    #[test]
    fn get_by_seq() {
        let mut rob = Rob::new(8);
        for s in 10..15u64 {
            rob.push(entry(s, false, false));
        }
        assert_eq!(rob.get(SeqNum(12)).unwrap().seq, SeqNum(12));
        assert!(rob.get(SeqNum(99)).is_none());
        rob.get_mut(SeqNum(13)).unwrap().state = RobState::Completed;
        assert!(rob.get(SeqNum(13)).unwrap().is_completed());
    }

    #[test]
    fn wake_boundary_is_second_long_latency() {
        let mut rob = Rob::new(16);
        rob.push(entry(0, true, false)); // first LL (blocking the head)
        rob.push(entry(1, false, false));
        rob.push(entry(2, false, false));
        rob.push(entry(3, true, false)); // second LL
        rob.push(entry(4, false, false));
        assert_eq!(rob.nu_wake_boundary(), SeqNum(3));
    }

    #[test]
    fn wake_boundary_ignores_completed_long_latency() {
        let mut rob = Rob::new(16);
        rob.push(entry(0, true, true)); // completed LL does not count
        rob.push(entry(1, true, false));
        rob.push(entry(2, false, false));
        // Only one incomplete LL -> boundary is past the tail.
        assert_eq!(rob.nu_wake_boundary(), SeqNum(3));
    }

    #[test]
    fn wake_boundary_with_no_long_latency_is_tail() {
        let mut rob = Rob::new(16);
        rob.push(entry(7, false, false));
        rob.push(entry(8, false, false));
        assert_eq!(rob.nu_wake_boundary(), SeqNum(9));
        assert_eq!(Rob::new(4).nu_wake_boundary(), SeqNum(0));
    }

    #[test]
    fn parked_count() {
        let mut rob = Rob::new(16);
        let mut e = entry(0, false, false);
        e.state = RobState::Parked;
        rob.push(e);
        rob.push(entry(1, false, false));
        assert_eq!(rob.parked_count(), 1);
    }
}
