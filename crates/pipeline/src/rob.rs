//! The reorder buffer.
//!
//! Every instruction — parked or not — allocates a ROB entry at rename so
//! that commit stays in order ("while the parked instructions have not been
//! placed in the IQ, they have been allocated an entry in the ROB to ensure
//! in-order commit", §3). The ROB is also where the LTP wakeup boundary is
//! computed: Non-Urgent instructions between the head and the *second*
//! long-latency instruction in the ROB are woken (§3.2, §5.2).

use crate::rat::RegSource;
use ltp_isa::{ArchReg, OpClass, Pc, PhysReg, SeqNum};
use ltp_mem::Cycle;
use std::collections::VecDeque;

/// Execution state of a ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobState {
    /// Parked in LTP; not yet dispatched to the IQ.
    Parked,
    /// Dispatched to the IQ, waiting for operands / issue.
    InQueue,
    /// Issued to a functional unit; completion scheduled.
    Executing,
    /// Result produced; eligible for commit when it reaches the head.
    Completed,
}

/// One reorder buffer entry.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Sequence number of the instruction.
    pub seq: SeqNum,
    /// Its PC (needed for UIT updates at commit).
    pub pc: Pc,
    /// Operation class.
    pub op: OpClass,
    /// Current state.
    pub state: RobState,
    /// Destination architectural register, if any.
    pub dst: Option<ArchReg>,
    /// Physical register allocated for the destination (None while parked).
    pub dest_phys: Option<PhysReg>,
    /// Previous mapping of the destination register, freed at commit.
    pub prev_mapping: RegSource,
    /// Whether this instruction is long-latency (LLC-missing load, divide,
    /// square root) — discovered at issue/execute time for loads.
    pub long_latency: bool,
    /// Whether the instruction currently holds an LQ entry.
    pub holds_lq: bool,
    /// Whether the instruction currently holds an SQ entry.
    pub holds_sq: bool,
    /// Whether it was parked in LTP at rename (for statistics).
    pub was_parked: bool,
    /// Cycle at which execution completes (valid once `Executing`).
    pub completion_cycle: Cycle,
}

impl RobEntry {
    /// Whether the entry has completed execution.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        self.state == RobState::Completed
    }
}

/// The reorder buffer: a bounded FIFO of [`RobEntry`].
#[derive(Debug, Clone)]
pub struct Rob {
    capacity: usize,
    entries: VecDeque<RobEntry>,
}

impl Rob {
    /// Creates an empty ROB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Rob {
        assert!(capacity > 0, "ROB needs at least one entry");
        Rob {
            capacity,
            entries: VecDeque::new(),
        }
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROB is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the ROB has room for another instruction.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an entry at the tail (program order).
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full or the entry is out of program order.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(self.has_space(), "pushing into a full ROB");
        if let Some(last) = self.entries.back() {
            assert!(
                last.seq.is_older_than(entry.seq),
                "ROB entries must be pushed in program order"
            );
        }
        self.entries.push_back(entry);
    }

    /// The oldest entry, if any.
    #[must_use]
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Sequence number just past the youngest entry (wake-everything
    /// boundary when there is no second long-latency instruction).
    #[must_use]
    pub fn tail_boundary(&self) -> SeqNum {
        self.entries
            .back()
            .map(|e| SeqNum(e.seq.0 + 1))
            .unwrap_or(SeqNum(0))
    }

    /// Pops the head if it has completed. Returns the committed entry.
    pub fn try_commit(&mut self) -> Option<RobEntry> {
        if self
            .entries
            .front()
            .map(RobEntry::is_completed)
            .unwrap_or(false)
        {
            self.entries.pop_front()
        } else {
            None
        }
    }

    /// Mutable access to the entry with sequence number `seq`.
    pub fn get_mut(&mut self, seq: SeqNum) -> Option<&mut RobEntry> {
        // Entries are in program order, so a binary search by seq works.
        let idx = self
            .entries
            .binary_search_by_key(&seq.0, |e| e.seq.0)
            .ok()?;
        self.entries.get_mut(idx)
    }

    /// Shared access to the entry with sequence number `seq`.
    #[must_use]
    pub fn get(&self, seq: SeqNum) -> Option<&RobEntry> {
        let idx = self
            .entries
            .binary_search_by_key(&seq.0, |e| e.seq.0)
            .ok()?;
        self.entries.get(idx)
    }

    /// Iterates over entries from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// The LTP Non-Urgent wakeup boundary: the sequence number of the
    /// *second* incomplete long-latency instruction in the ROB. Parked
    /// instructions older than this boundary are woken so that, when the
    /// long-latency instruction blocking the head completes, everything up to
    /// the next stall point is ready to commit (§3.2).
    ///
    /// When fewer than two incomplete long-latency instructions are present
    /// the boundary is one past the ROB tail (wake everything).
    #[must_use]
    pub fn nu_wake_boundary(&self) -> SeqNum {
        let mut seen = 0;
        for e in &self.entries {
            if e.long_latency && !e.is_completed() {
                seen += 1;
                if seen == 2 {
                    return e.seq;
                }
            }
        }
        self.tail_boundary()
    }

    /// Number of parked entries currently in the ROB.
    #[must_use]
    pub fn parked_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.state == RobState::Parked)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, long_latency: bool, completed: bool) -> RobEntry {
        RobEntry {
            seq: SeqNum(seq),
            pc: Pc(0x100 + seq * 4),
            op: OpClass::IntAlu,
            state: if completed {
                RobState::Completed
            } else {
                RobState::InQueue
            },
            dst: Some(ArchReg::int(1)),
            dest_phys: None,
            prev_mapping: RegSource::Ready,
            long_latency,
            holds_lq: false,
            holds_sq: false,
            was_parked: false,
            completion_cycle: 0,
        }
    }

    #[test]
    fn push_and_commit_in_order() {
        let mut rob = Rob::new(4);
        rob.push(entry(0, false, true));
        rob.push(entry(1, false, false));
        assert_eq!(rob.len(), 2);
        let c = rob.try_commit().unwrap();
        assert_eq!(c.seq, SeqNum(0));
        // Head not completed: no commit.
        assert!(rob.try_commit().is_none());
        assert_eq!(rob.len(), 1);
    }

    #[test]
    #[should_panic(expected = "full ROB")]
    fn push_into_full_rob_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0, false, false));
        rob.push(entry(1, false, false));
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_push_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(5, false, false));
        rob.push(entry(3, false, false));
    }

    #[test]
    fn get_by_seq() {
        let mut rob = Rob::new(8);
        for s in 10..15u64 {
            rob.push(entry(s, false, false));
        }
        assert_eq!(rob.get(SeqNum(12)).unwrap().seq, SeqNum(12));
        assert!(rob.get(SeqNum(99)).is_none());
        rob.get_mut(SeqNum(13)).unwrap().state = RobState::Completed;
        assert!(rob.get(SeqNum(13)).unwrap().is_completed());
    }

    #[test]
    fn wake_boundary_is_second_long_latency() {
        let mut rob = Rob::new(16);
        rob.push(entry(0, true, false)); // first LL (blocking the head)
        rob.push(entry(1, false, false));
        rob.push(entry(2, false, false));
        rob.push(entry(3, true, false)); // second LL
        rob.push(entry(4, false, false));
        assert_eq!(rob.nu_wake_boundary(), SeqNum(3));
    }

    #[test]
    fn wake_boundary_ignores_completed_long_latency() {
        let mut rob = Rob::new(16);
        rob.push(entry(0, true, true)); // completed LL does not count
        rob.push(entry(1, true, false));
        rob.push(entry(2, false, false));
        // Only one incomplete LL -> boundary is past the tail.
        assert_eq!(rob.nu_wake_boundary(), SeqNum(3));
    }

    #[test]
    fn wake_boundary_with_no_long_latency_is_tail() {
        let mut rob = Rob::new(16);
        rob.push(entry(7, false, false));
        rob.push(entry(8, false, false));
        assert_eq!(rob.nu_wake_boundary(), SeqNum(9));
        assert_eq!(Rob::new(4).nu_wake_boundary(), SeqNum(0));
    }

    #[test]
    fn parked_count() {
        let mut rob = Rob::new(16);
        let mut e = entry(0, false, false);
        e.state = RobState::Parked;
        rob.push(e);
        rob.push(entry(1, false, false));
        assert_eq!(rob.parked_count(), 1);
    }
}
