//! Pipeline configuration (Table 1 of the paper).
//!
//! The configuration splits into two halves along what functional warm-up
//! can observe:
//!
//! * [`WarmupConfig`] — memory-hierarchy geometry (caches, prefetcher,
//!   DRAM, MSHRs), branch-predictor geometry, and the classifier *training*
//!   projection. This is everything
//!   [`FunctionalFastForward::advance_on`](crate::FunctionalFastForward)
//!   reads or trains, so warm state captured under one configuration is
//!   bit-exactly reusable under any other with the same `WarmupConfig`.
//! * [`DetailConfig`] — widths, ROB/IQ/LQ/SQ/PRF sizes, latency penalties,
//!   the full LTP configuration, SMT policy, and detailed-warm-up length.
//!   None of these are visible to the functional pass.
//!
//! [`PipelineConfig`] stays the flat struct every call site (and the
//! snapshot wire format) uses; [`PipelineConfig::split`] and
//! [`PipelineConfig::compose`] convert between the flat form and the two
//! halves. Both are written with exhaustive destructuring so adding a field
//! to `PipelineConfig` refuses to compile until it is assigned to a half —
//! the checkpoint-cache key stays principled by construction.

use crate::branch::PredictorGeometry;
use ltp_core::{ClassifierKind, LtpConfig};
use ltp_mem::MemoryConfig;

/// Number of functional units of each kind (index by
/// [`ltp_isa::FuKind`]-matching order used in `fu.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuCounts {
    /// Simple integer ALUs.
    pub int_alu: usize,
    /// Integer multiply/divide units.
    pub int_muldiv: usize,
    /// Floating point add/mul pipes.
    pub fp_alu: usize,
    /// Floating point divide/sqrt units.
    pub fp_divsqrt: usize,
    /// Load/store ports.
    pub mem: usize,
    /// Branch units.
    pub branch: usize,
}

impl FuCounts {
    /// A large-core mix matching the 6-wide issue of Table 1.
    #[must_use]
    pub fn large_core() -> FuCounts {
        FuCounts {
            int_alu: 4,
            int_muldiv: 1,
            fp_alu: 2,
            fp_divsqrt: 1,
            mem: 2,
            branch: 2,
        }
    }
}

/// How the sized back-end structures (ROB, IQ, LQ/SQ, physical registers)
/// are divided between the hardware threads of an SMT machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharePolicy {
    /// Every structure is statically split into equal per-thread partitions;
    /// a thread can never consume capacity its co-runner is not using.
    StaticPartition,
    /// Fully dynamic sharing: a thread may occupy any entry as long as the
    /// *combined* occupancy stays within the configured size. This is the
    /// policy under which LTP's parking visibly frees resources for the
    /// co-runner. Front-end bandwidth alternates round-robin.
    Shared,
    /// Dynamic sharing with ICOUNT-style fetch arbitration: each cycle the
    /// thread with the fewest instructions in the front end and issue queue
    /// fetches, renames, issues and commits first.
    Icount,
}

impl SharePolicy {
    /// Short label used in reports and bench names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SharePolicy::StaticPartition => "static",
            SharePolicy::Shared => "shared",
            SharePolicy::Icount => "icount",
        }
    }
}

/// SMT configuration of the core: number of hardware threads and the
/// back-end sharing policy. The default is a single-threaded machine, which
/// behaves (and must stay) bit-for-bit identical to the pre-SMT pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmtConfig {
    /// Number of hardware threads (1..=4; 1 = no SMT).
    pub threads: usize,
    /// How the back-end structures are shared between threads.
    pub policy: SharePolicy,
}

impl SmtConfig {
    /// A single-threaded machine (the policy is irrelevant and unused).
    #[must_use]
    pub fn single() -> SmtConfig {
        SmtConfig {
            threads: 1,
            policy: SharePolicy::Shared,
        }
    }

    /// A 2-way SMT machine with the given sharing policy.
    #[must_use]
    pub fn two_way(policy: SharePolicy) -> SmtConfig {
        SmtConfig { threads: 2, policy }
    }

    /// Whether more than one hardware thread is configured.
    #[must_use]
    pub fn is_smt(&self) -> bool {
        self.threads > 1
    }
}

/// How functional warm-up trains the criticality classifier under a given
/// [`LtpConfig`] — the projection of the classifier choice onto the warm-up
/// half of the configuration.
///
/// [`ClassifierKind::Uit`] and [`ClassifierKind::Oracle`] both start as a
/// UIT classifier of `uit_entries` entries that learns from every load
/// outcome the fast-forward feeds it, so they project to
/// [`ClassifierTraining::Trained`]; the control classifiers (Random,
/// AlwaysReady, ParkEverything) ignore load outcomes entirely and project
/// to [`ClassifierTraining::Inert`]. Two configurations whose projections
/// agree produce bit-identical classifier state from the same warm-up
/// stream — which is exactly the condition the checkpoint cache needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifierTraining {
    /// Warm-up is a no-op on the classifier: a fresh build is bit-identical
    /// to a warmed one.
    Inert,
    /// Warm-up trains a UIT + hit/miss predictor of this size.
    Trained {
        /// Number of UIT entries being trained.
        uit_entries: usize,
    },
}

impl ClassifierTraining {
    /// The training projection of an LTP configuration.
    #[must_use]
    pub fn of(ltp: &LtpConfig) -> ClassifierTraining {
        if ltp.classifier.trains_during_warmup() {
            ClassifierTraining::Trained {
                uit_entries: ltp.uit_entries,
            }
        } else {
            ClassifierTraining::Inert
        }
    }
}

/// The warm-up half of a [`PipelineConfig`]: everything the functional
/// fast-forward observes or trains. Configurations with equal `WarmupConfig`
/// halves can share cached warm state bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmupConfig {
    /// Memory hierarchy geometry (caches, prefetcher, DRAM, MSHRs).
    pub mem: MemoryConfig,
    /// Branch predictor geometry trained by the functional pass.
    pub predictor: PredictorGeometry,
    /// How warm-up trains the criticality classifier.
    pub training: ClassifierTraining,
}

/// The detail half of a [`PipelineConfig`]: everything the detailed
/// pipeline needs that the functional fast-forward cannot observe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailConfig {
    /// Front-end width.
    pub front_width: usize,
    /// Issue width.
    pub issue_width: usize,
    /// Commit width.
    pub commit_width: usize,
    /// Reorder buffer entries.
    pub rob_size: usize,
    /// Instruction queue entries.
    pub iq_size: usize,
    /// Load queue entries.
    pub lq_size: usize,
    /// Store queue entries.
    pub sq_size: usize,
    /// Available integer physical registers.
    pub int_regs: usize,
    /// Available floating point registers.
    pub fp_regs: usize,
    /// Registers/LQ/SQ entries reserved for LTP release.
    pub ltp_reserve: usize,
    /// Front-end depth in cycles.
    pub frontend_delay: u64,
    /// Branch misprediction redirect penalty.
    pub mispredict_penalty: u64,
    /// Functional unit mix.
    pub fu: FuCounts,
    /// Whether LQ/SQ allocation is delayed for parked instructions.
    pub delay_lsq_alloc: bool,
    /// Full LTP configuration (mode, sizes, classifier choice). Only its
    /// [`ClassifierTraining`] projection leaks into the warm-up half.
    pub ltp: LtpConfig,
    /// Detailed pipeline-warming instructions before statistics.
    pub warmup_insts: u64,
    /// SMT configuration.
    pub smt: SmtConfig,
}

/// Full configuration of the out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Front-end width (fetch/decode/rename), instructions per cycle.
    pub front_width: usize,
    /// Issue width (instructions selected from the IQ per cycle).
    pub issue_width: usize,
    /// Commit width.
    pub commit_width: usize,
    /// Reorder buffer entries.
    pub rob_size: usize,
    /// Instruction queue entries (`usize::MAX` = unlimited, limit study).
    pub iq_size: usize,
    /// Load queue entries.
    pub lq_size: usize,
    /// Store queue entries.
    pub sq_size: usize,
    /// *Available* integer physical registers beyond the architectural ones
    /// (the quantity swept in Figure 6, per footnote 4 of the paper).
    pub int_regs: usize,
    /// Available floating point registers (scaled together with `int_regs`).
    pub fp_regs: usize,
    /// Number of registers/LQ/SQ entries held in reserve for instructions
    /// leaving the LTP (deadlock avoidance, §5.4).
    pub ltp_reserve: usize,
    /// Front-end depth in cycles (fetch to rename).
    pub frontend_delay: u64,
    /// Branch misprediction redirect penalty in cycles.
    pub mispredict_penalty: u64,
    /// Functional unit mix.
    pub fu: FuCounts,
    /// Whether LQ/SQ allocation is delayed for parked instructions (only the
    /// LQ/SQ rows of the limit study enable this; the proposed design does
    /// not, §4.3).
    pub delay_lsq_alloc: bool,
    /// Memory hierarchy configuration.
    pub mem: MemoryConfig,
    /// LTP configuration (including the criticality classifier selection,
    /// [`LtpConfig::classifier`]).
    pub ltp: LtpConfig,
    /// Number of instructions of detailed pipeline warming before statistics
    /// are collected (the paper warms the pipeline for 100 k instructions).
    pub warmup_insts: u64,
    /// SMT configuration: thread count and back-end sharing policy.
    pub smt: SmtConfig,
}

impl PipelineConfig {
    /// Table 1: 8-wide front end, 6-wide issue, ROB 256, IQ 64, LQ 64, SQ 32,
    /// 128 int + 128 fp registers, no LTP.
    #[must_use]
    pub fn micro2015_baseline() -> PipelineConfig {
        PipelineConfig {
            front_width: 8,
            issue_width: 6,
            commit_width: 8,
            rob_size: 256,
            iq_size: 64,
            lq_size: 64,
            sq_size: 32,
            int_regs: 128,
            fp_regs: 128,
            ltp_reserve: 8,
            frontend_delay: 6,
            mispredict_penalty: 12,
            fu: FuCounts::large_core(),
            delay_lsq_alloc: false,
            mem: MemoryConfig::micro2015_baseline(),
            ltp: LtpConfig::disabled(),
            warmup_insts: 0,
            smt: SmtConfig::single(),
        }
    }

    /// The paper's proposed design: IQ reduced to 32, available registers to
    /// 96, plus a 128-entry 4-port Non-Urgent-only LTP (§5).
    #[must_use]
    pub fn ltp_proposed() -> PipelineConfig {
        PipelineConfig {
            iq_size: 32,
            int_regs: 96,
            fp_regs: 96,
            ltp: LtpConfig::nu_only_128x4(),
            ..PipelineConfig::micro2015_baseline()
        }
    }

    /// The small-IQ configuration without LTP (the red line of Figure 10:
    /// "IQ 32/RF 96 without LTP").
    #[must_use]
    pub fn small_no_ltp() -> PipelineConfig {
        PipelineConfig {
            iq_size: 32,
            int_regs: 96,
            fp_regs: 96,
            ..PipelineConfig::micro2015_baseline()
        }
    }

    /// Limit-study base: every sized resource unlimited, unlimited MSHRs,
    /// prefetcher enabled (the caller then constrains exactly one resource).
    #[must_use]
    pub fn limit_study_unlimited() -> PipelineConfig {
        PipelineConfig {
            iq_size: usize::MAX,
            lq_size: usize::MAX,
            sq_size: usize::MAX,
            int_regs: usize::MAX,
            fp_regs: usize::MAX,
            mem: MemoryConfig::limit_study(),
            ..PipelineConfig::micro2015_baseline()
        }
    }

    /// Returns a copy with a different IQ size.
    #[must_use]
    pub fn with_iq(mut self, iq_size: usize) -> PipelineConfig {
        self.iq_size = iq_size;
        self
    }

    /// Returns a copy with a different number of available registers (both
    /// classes scaled together, as in the paper).
    #[must_use]
    pub fn with_regs(mut self, regs: usize) -> PipelineConfig {
        self.int_regs = regs;
        self.fp_regs = regs;
        self
    }

    /// Returns a copy with a different load queue size.
    #[must_use]
    pub fn with_lq(mut self, lq_size: usize) -> PipelineConfig {
        self.lq_size = lq_size;
        self
    }

    /// Returns a copy with a different store queue size.
    #[must_use]
    pub fn with_sq(mut self, sq_size: usize) -> PipelineConfig {
        self.sq_size = sq_size;
        self
    }

    /// Returns a copy with a different LTP configuration.
    #[must_use]
    pub fn with_ltp(mut self, ltp: LtpConfig) -> PipelineConfig {
        self.ltp = ltp;
        self
    }

    /// Returns a copy using (or not using) the oracle classifier.
    /// `with_oracle(true)` selects [`ClassifierKind::Oracle`];
    /// `with_oracle(false)` falls back to [`ClassifierKind::Uit`] only when
    /// the oracle was selected, leaving any other classifier choice intact.
    #[must_use]
    pub fn with_oracle(mut self, use_oracle: bool) -> PipelineConfig {
        if use_oracle {
            self.ltp.classifier = ClassifierKind::Oracle;
        } else if self.ltp.classifier == ClassifierKind::Oracle {
            self.ltp.classifier = ClassifierKind::Uit;
        }
        self
    }

    /// Returns a copy with a different criticality classifier.
    #[must_use]
    pub fn with_classifier(mut self, classifier: ClassifierKind) -> PipelineConfig {
        self.ltp.classifier = classifier;
        self
    }

    /// Whether this configuration needs an ahead-of-time trace analysis
    /// attached before the run ([`ClassifierKind::Oracle`]).
    #[must_use]
    pub fn needs_oracle(&self) -> bool {
        self.ltp.classifier.needs_trace_oracle()
    }

    /// Returns a copy with a different memory configuration.
    #[must_use]
    pub fn with_mem(mut self, mem: MemoryConfig) -> PipelineConfig {
        self.mem = mem;
        self
    }

    /// Returns a copy with the given number of pipeline-warmup instructions.
    #[must_use]
    pub fn with_warmup(mut self, warmup_insts: u64) -> PipelineConfig {
        self.warmup_insts = warmup_insts;
        self
    }

    /// Returns a copy configured as a 2-way SMT machine with the given
    /// back-end sharing policy. The sized structures keep their configured
    /// *total* sizes; the policy decides how the two threads divide them.
    #[must_use]
    pub fn smt(mut self, policy: SharePolicy) -> PipelineConfig {
        self.smt = SmtConfig::two_way(policy);
        self
    }

    /// Returns a copy with an arbitrary SMT configuration (thread count and
    /// policy); `SmtConfig::single()` restores the single-threaded machine.
    #[must_use]
    pub fn with_smt(mut self, smt: SmtConfig) -> PipelineConfig {
        self.smt = smt;
        self
    }

    /// Splits the configuration into its warm-up and detail halves.
    ///
    /// The destructuring is exhaustive on purpose: a field added to
    /// `PipelineConfig` fails to compile here until it is assigned to one
    /// half, keeping the checkpoint-cache key honest.
    #[must_use]
    pub fn split(&self) -> (WarmupConfig, DetailConfig) {
        let PipelineConfig {
            front_width,
            issue_width,
            commit_width,
            rob_size,
            iq_size,
            lq_size,
            sq_size,
            int_regs,
            fp_regs,
            ltp_reserve,
            frontend_delay,
            mispredict_penalty,
            fu,
            delay_lsq_alloc,
            mem,
            ltp,
            warmup_insts,
            smt,
        } = *self;
        (
            WarmupConfig {
                mem,
                // The pipeline builds the default-sized predictor for every
                // configuration today; the geometry still travels in the
                // warm half so the cache key changes if that ever changes.
                predictor: PredictorGeometry::default_sized(),
                training: ClassifierTraining::of(&ltp),
            },
            DetailConfig {
                front_width,
                issue_width,
                commit_width,
                rob_size,
                iq_size,
                lq_size,
                sq_size,
                int_regs,
                fp_regs,
                ltp_reserve,
                frontend_delay,
                mispredict_penalty,
                fu,
                delay_lsq_alloc,
                ltp,
                warmup_insts,
                smt,
            },
        )
    }

    /// The warm-up half alone (what checkpoint-cache keys are derived from).
    #[must_use]
    pub fn warmup_config(&self) -> WarmupConfig {
        self.split().0
    }

    /// Recomposes a configuration from its two halves — the inverse of
    /// [`PipelineConfig::split`].
    ///
    /// # Panics
    ///
    /// Panics if the halves are inconsistent: the warm half's classifier
    /// training projection must match the detail half's LTP configuration,
    /// and the predictor geometry must be the (only supported) default.
    /// Composing mismatched halves would silently produce a configuration
    /// whose warm state is *not* interchangeable with either input, which is
    /// exactly the bug the split exists to prevent.
    #[must_use]
    pub fn compose(warm: WarmupConfig, detail: DetailConfig) -> PipelineConfig {
        let WarmupConfig {
            mem,
            predictor,
            training,
        } = warm;
        assert_eq!(
            predictor,
            PredictorGeometry::default_sized(),
            "the pipeline only builds the default-sized branch predictor"
        );
        assert_eq!(
            training,
            ClassifierTraining::of(&detail.ltp),
            "warm half trains the classifier differently than the detail half's LTP config"
        );
        let DetailConfig {
            front_width,
            issue_width,
            commit_width,
            rob_size,
            iq_size,
            lq_size,
            sq_size,
            int_regs,
            fp_regs,
            ltp_reserve,
            frontend_delay,
            mispredict_penalty,
            fu,
            delay_lsq_alloc,
            ltp,
            warmup_insts,
            smt,
        } = detail;
        PipelineConfig {
            front_width,
            issue_width,
            commit_width,
            rob_size,
            iq_size,
            lq_size,
            sq_size,
            int_regs,
            fp_regs,
            ltp_reserve,
            frontend_delay,
            mispredict_penalty,
            fu,
            delay_lsq_alloc,
            mem,
            ltp,
            warmup_insts,
            smt,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any width or structurally required size is zero.
    pub fn validate(&self) {
        assert!(self.front_width > 0, "front-end width must be positive");
        assert!(self.issue_width > 0, "issue width must be positive");
        assert!(self.commit_width > 0, "commit width must be positive");
        assert!(self.rob_size > 0, "ROB must have entries");
        assert!(self.iq_size > 0, "IQ must have entries");
        assert!(
            self.lq_size > 0 && self.sq_size > 0,
            "LQ/SQ must have entries"
        );
        assert!(
            self.int_regs > 0 && self.fp_regs > 0,
            "register file must have entries"
        );
        assert!(
            (1..=4).contains(&self.smt.threads),
            "SMT thread count must be in 1..=4"
        );
        if self.smt.is_smt() && self.smt.policy == SharePolicy::StaticPartition {
            let n = self.smt.threads;
            assert!(
                self.rob_size / n > 0
                    && self.iq_size / n > 0
                    && self.lq_size / n > 0
                    && self.sq_size / n > 0
                    && self.int_regs / n > 0
                    && self.fp_regs / n > 0,
                "static partitioning needs at least one entry per thread in every structure"
            );
        }
        self.ltp.validate();
    }

    /// Total integer physical registers (architectural + available), the
    /// quantity the energy model sizes the RF with.
    #[must_use]
    pub fn total_int_phys_regs(&self) -> usize {
        self.int_regs.saturating_add(ltp_isa::NUM_ARCH_INT_REGS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = PipelineConfig::micro2015_baseline();
        assert_eq!(c.front_width, 8);
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.commit_width, 8);
        assert_eq!(c.rob_size, 256);
        assert_eq!(c.iq_size, 64);
        assert_eq!(c.lq_size, 64);
        assert_eq!(c.sq_size, 32);
        assert_eq!(c.int_regs, 128);
        c.validate();
    }

    #[test]
    fn proposed_design_shrinks_iq_and_rf() {
        let c = PipelineConfig::ltp_proposed();
        assert_eq!(c.iq_size, 32);
        assert_eq!(c.int_regs, 96);
        assert!(c.ltp.mode.is_enabled());
        c.validate();
    }

    #[test]
    fn limit_study_is_unlimited() {
        let c = PipelineConfig::limit_study_unlimited();
        assert_eq!(c.iq_size, usize::MAX);
        assert_eq!(c.lq_size, usize::MAX);
        assert_eq!(c.int_regs, usize::MAX);
        assert_eq!(c.mem.mshrs, usize::MAX);
        c.validate();
    }

    #[test]
    fn builders_apply() {
        let c = PipelineConfig::limit_study_unlimited()
            .with_iq(16)
            .with_regs(64)
            .with_lq(8)
            .with_sq(8)
            .with_oracle(true)
            .with_warmup(1000);
        assert_eq!(c.iq_size, 16);
        assert_eq!(c.int_regs, 64);
        assert_eq!(c.fp_regs, 64);
        assert_eq!(c.lq_size, 8);
        assert_eq!(c.sq_size, 8);
        assert!(c.needs_oracle());
        assert_eq!(c.warmup_insts, 1000);
        let c = c.with_classifier(ClassifierKind::AlwaysReady);
        assert!(!c.needs_oracle());
        assert_eq!(c.ltp.classifier, ClassifierKind::AlwaysReady);
    }

    #[test]
    #[should_panic(expected = "IQ must have entries")]
    fn zero_iq_panics() {
        PipelineConfig::micro2015_baseline().with_iq(0).validate();
    }

    #[test]
    fn smt_builders_apply() {
        let c = PipelineConfig::micro2015_baseline();
        assert_eq!(c.smt, SmtConfig::single());
        assert!(!c.smt.is_smt());
        let c = c.smt(SharePolicy::Icount);
        assert_eq!(c.smt.threads, 2);
        assert_eq!(c.smt.policy, SharePolicy::Icount);
        assert!(c.smt.is_smt());
        c.validate();
        let c = c.with_smt(SmtConfig::single());
        assert!(!c.smt.is_smt());
        assert_eq!(SharePolicy::StaticPartition.label(), "static");
        assert_eq!(SharePolicy::Shared.label(), "shared");
        assert_eq!(SharePolicy::Icount.label(), "icount");
    }

    #[test]
    #[should_panic(expected = "at least one entry per thread")]
    fn static_partition_needs_entries_per_thread() {
        PipelineConfig::micro2015_baseline()
            .with_sq(1)
            .smt(SharePolicy::StaticPartition)
            .validate();
    }

    #[test]
    fn total_phys_regs_adds_architectural() {
        let c = PipelineConfig::micro2015_baseline();
        assert_eq!(c.total_int_phys_regs(), 128 + ltp_isa::NUM_ARCH_INT_REGS);
    }

    #[test]
    fn split_compose_round_trips_named_configs() {
        for cfg in [
            PipelineConfig::micro2015_baseline(),
            PipelineConfig::ltp_proposed(),
            PipelineConfig::small_no_ltp(),
            PipelineConfig::limit_study_unlimited(),
            PipelineConfig::micro2015_baseline().smt(SharePolicy::Icount),
            PipelineConfig::ltp_proposed().with_classifier(ClassifierKind::AlwaysReady),
        ] {
            let (warm, detail) = cfg.split();
            assert_eq!(PipelineConfig::compose(warm, detail), cfg);
            assert_eq!(cfg.warmup_config(), warm);
        }
    }

    #[test]
    fn training_projection_follows_classifier_kind() {
        let trained = PipelineConfig::ltp_proposed();
        assert_eq!(
            ClassifierTraining::of(&trained.ltp),
            ClassifierTraining::Trained {
                uit_entries: trained.ltp.uit_entries
            }
        );
        let inert = trained.with_classifier(ClassifierKind::AlwaysReady);
        assert_eq!(
            ClassifierTraining::of(&inert.ltp),
            ClassifierTraining::Inert
        );
    }

    #[test]
    #[should_panic(expected = "trains the classifier differently")]
    fn compose_rejects_training_mismatch() {
        let (warm, _) = PipelineConfig::ltp_proposed().split();
        let (_, detail) = PipelineConfig::ltp_proposed()
            .with_classifier(ClassifierKind::AlwaysReady)
            .split();
        let _ = PipelineConfig::compose(warm, detail);
    }

    #[test]
    #[should_panic(expected = "default-sized branch predictor")]
    fn compose_rejects_predictor_mismatch() {
        let (mut warm, detail) = PipelineConfig::ltp_proposed().split();
        warm.predictor = crate::branch::PredictorGeometry {
            table_entries: 8192,
            history_bits: 14,
        };
        let _ = PipelineConfig::compose(warm, detail);
    }

    mod warm_key {
        use super::*;
        use ltp_core::LtpMode;
        use proptest::prelude::*;

        /// Applies a random *detail-only* mutation set to a configuration:
        /// nothing here may leak into the warm-up half.
        #[allow(clippy::too_many_arguments)]
        fn mutate_detail(
            mut cfg: PipelineConfig,
            rob: usize,
            iq: usize,
            lq: usize,
            sq: usize,
            regs: usize,
            reserve: usize,
            mode_sel: u8,
            monitor: bool,
            entries: usize,
            tickets: usize,
            swap_trained_kind: bool,
        ) -> PipelineConfig {
            cfg.rob_size = rob;
            cfg.iq_size = iq;
            cfg.lq_size = lq;
            cfg.sq_size = sq;
            cfg.int_regs = regs;
            cfg.fp_regs = regs;
            cfg.ltp_reserve = reserve;
            cfg.ltp.mode = match mode_sel % 4 {
                0 => LtpMode::Off,
                1 => LtpMode::NonUrgentOnly,
                2 => LtpMode::NonReadyOnly,
                _ => LtpMode::Both,
            };
            cfg.ltp.use_monitor = monitor;
            cfg.ltp.entries = entries;
            cfg.ltp.num_tickets = tickets;
            if swap_trained_kind {
                // Uit <-> Oracle both train the same UIT during warm-up, so
                // the swap is a detail-only change by construction.
                cfg.ltp.classifier = match cfg.ltp.classifier {
                    ClassifierKind::Uit => ClassifierKind::Oracle,
                    other => other,
                };
            }
            cfg
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The warm-up key is invariant under every detail-only
            /// dimension the sweeps vary: ROB/IQ/LQ/SQ/PRF sizes, the LTP
            /// reserve, LTP mode/entries/tickets/monitor, and classifier
            /// swaps within the same training projection.
            #[test]
            fn detail_changes_keep_warm_key(
                rob in 16usize..512,
                iq in 4usize..256,
                lq in 4usize..128,
                sq in 4usize..64,
                regs in 32usize..256,
                reserve in 1usize..16,
                mode_sel in 0u8..4,
                monitor in any::<bool>(),
                entries in 1usize..512,
                tickets in 1usize..128,
                swap in any::<bool>(),
            ) {
                let base = PipelineConfig::ltp_proposed();
                let mutated = mutate_detail(
                    base, rob, iq, lq, sq, regs, reserve, mode_sel, monitor,
                    entries, tickets, swap,
                );
                prop_assert_eq!(
                    mutated.warmup_config().fingerprint(),
                    base.warmup_config().fingerprint()
                );
            }

            /// Anything the functional pass *can* observe moves the key:
            /// memory geometry (prefetcher, MSHRs), predictor geometry, the
            /// trained UIT size, and the training projection itself.
            #[test]
            fn warm_changes_move_warm_key(
                mshrs in 1usize..64,
                uit in 1usize..1024,
                table_shift in 1u32..4,
            ) {
                let base = PipelineConfig::ltp_proposed();
                let key0 = base.warmup_config().fingerprint();

                let mut no_pf = base;
                no_pf.mem = no_pf.mem.without_prefetcher();
                prop_assert_ne!(no_pf.warmup_config().fingerprint(), key0);

                if mshrs != base.mem.mshrs {
                    let mut small_mshrs = base;
                    small_mshrs.mem.mshrs = mshrs;
                    prop_assert_ne!(small_mshrs.warmup_config().fingerprint(), key0);
                }

                if uit != base.ltp.uit_entries {
                    let mut other_uit = base;
                    other_uit.ltp = other_uit.ltp.with_uit_entries(uit);
                    prop_assert_ne!(other_uit.warmup_config().fingerprint(), key0);
                }

                let inert = base.with_classifier(ClassifierKind::AlwaysReady);
                prop_assert_ne!(inert.warmup_config().fingerprint(), key0);

                let mut warm = base.warmup_config();
                warm.predictor.table_entries <<= table_shift;
                prop_assert_ne!(warm.fingerprint(), key0);
            }
        }
    }
}
