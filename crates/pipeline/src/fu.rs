//! Functional unit pool.
//!
//! Pipelined units (ALUs, FP pipes, memory ports, branch units) accept one
//! new operation per cycle per unit; unpipelined units (integer divide, FP
//! divide/sqrt) stay busy for the full latency of the operation.

use crate::config::FuCounts;
use ltp_isa::FuKind;
use ltp_mem::Cycle;

#[derive(Debug, Clone)]
pub(crate) struct UnitPool {
    /// For pipelined units: number of issues granted this cycle.
    pub(crate) issued_this_cycle: usize,
    /// Number of units of this kind.
    pub(crate) count: usize,
    /// For unpipelined units: busy-until cycle per unit.
    pub(crate) busy_until: Vec<Cycle>,
    pub(crate) pipelined: bool,
}

impl UnitPool {
    fn new(count: usize, pipelined: bool) -> UnitPool {
        UnitPool {
            issued_this_cycle: 0,
            count,
            busy_until: vec![0; count],
            pipelined,
        }
    }

    fn available(&self, now: Cycle) -> bool {
        if self.pipelined {
            self.issued_this_cycle < self.count
        } else {
            self.busy_until.iter().any(|&b| b <= now)
        }
    }

    fn acquire(&mut self, now: Cycle, latency: u64) -> bool {
        if self.pipelined {
            if self.issued_this_cycle < self.count {
                self.issued_this_cycle += 1;
                true
            } else {
                false
            }
        } else if let Some(slot) = self.busy_until.iter_mut().find(|b| **b <= now) {
            *slot = now + latency;
            true
        } else {
            false
        }
    }

    fn new_cycle(&mut self) {
        self.issued_this_cycle = 0;
    }
}

/// The pool of functional units of the core.
#[derive(Debug, Clone)]
pub struct FuPool {
    pub(crate) int_alu: UnitPool,
    pub(crate) int_muldiv: UnitPool,
    pub(crate) fp_alu: UnitPool,
    pub(crate) fp_divsqrt: UnitPool,
    pub(crate) mem: UnitPool,
    pub(crate) branch: UnitPool,
}

impl FuPool {
    /// Creates the pool from the configured unit counts.
    #[must_use]
    pub fn new(counts: &FuCounts) -> FuPool {
        FuPool {
            int_alu: UnitPool::new(counts.int_alu.max(1), true),
            int_muldiv: UnitPool::new(counts.int_muldiv.max(1), false),
            fp_alu: UnitPool::new(counts.fp_alu.max(1), true),
            fp_divsqrt: UnitPool::new(counts.fp_divsqrt.max(1), false),
            mem: UnitPool::new(counts.mem.max(1), true),
            branch: UnitPool::new(counts.branch.max(1), true),
        }
    }

    fn pool(&self, kind: FuKind) -> &UnitPool {
        match kind {
            FuKind::IntAlu => &self.int_alu,
            FuKind::IntMulDiv => &self.int_muldiv,
            FuKind::FpAlu => &self.fp_alu,
            FuKind::FpDivSqrt => &self.fp_divsqrt,
            FuKind::Mem => &self.mem,
            FuKind::Branch => &self.branch,
        }
    }

    fn pool_mut(&mut self, kind: FuKind) -> &mut UnitPool {
        match kind {
            FuKind::IntAlu => &mut self.int_alu,
            FuKind::IntMulDiv => &mut self.int_muldiv,
            FuKind::FpAlu => &mut self.fp_alu,
            FuKind::FpDivSqrt => &mut self.fp_divsqrt,
            FuKind::Mem => &mut self.mem,
            FuKind::Branch => &mut self.branch,
        }
    }

    /// Whether a unit of `kind` can accept an operation at cycle `now`.
    #[must_use]
    pub fn available(&self, kind: FuKind, now: Cycle) -> bool {
        self.pool(kind).available(now)
    }

    /// Reserves a unit of `kind` for an operation of `latency` cycles
    /// starting at `now`. Returns whether a unit was granted.
    pub fn acquire(&mut self, kind: FuKind, now: Cycle, latency: u64) -> bool {
        self.pool_mut(kind).acquire(now, latency)
    }

    /// Resets the per-cycle issue budget of the pipelined units. Call once at
    /// the start of each simulated cycle.
    pub fn new_cycle(&mut self) {
        self.int_alu.new_cycle();
        self.int_muldiv.new_cycle();
        self.fp_alu.new_cycle();
        self.fp_divsqrt.new_cycle();
        self.mem.new_cycle();
        self.branch.new_cycle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> FuPool {
        FuPool::new(&FuCounts {
            int_alu: 2,
            int_muldiv: 1,
            fp_alu: 1,
            fp_divsqrt: 1,
            mem: 2,
            branch: 1,
        })
    }

    #[test]
    fn pipelined_units_accept_one_per_cycle_per_unit() {
        let mut p = pool();
        assert!(p.acquire(FuKind::IntAlu, 0, 1));
        assert!(p.acquire(FuKind::IntAlu, 0, 1));
        assert!(!p.acquire(FuKind::IntAlu, 0, 1), "only two ALUs");
        p.new_cycle();
        assert!(p.acquire(FuKind::IntAlu, 1, 1));
    }

    #[test]
    fn unpipelined_units_stay_busy() {
        let mut p = pool();
        assert!(p.acquire(FuKind::IntMulDiv, 0, 20));
        assert!(!p.available(FuKind::IntMulDiv, 5));
        p.new_cycle();
        assert!(!p.acquire(FuKind::IntMulDiv, 5, 20));
        assert!(p.available(FuKind::IntMulDiv, 20));
        assert!(p.acquire(FuKind::IntMulDiv, 20, 20));
    }

    #[test]
    fn kinds_are_independent() {
        let mut p = pool();
        assert!(p.acquire(FuKind::Mem, 0, 1));
        assert!(p.acquire(FuKind::Mem, 0, 1));
        assert!(!p.acquire(FuKind::Mem, 0, 1));
        assert!(p.acquire(FuKind::Branch, 0, 1));
        assert!(p.acquire(FuKind::FpAlu, 0, 1));
    }

    #[test]
    fn zero_counts_are_clamped_to_one() {
        let p = FuPool::new(&FuCounts {
            int_alu: 0,
            int_muldiv: 0,
            fp_alu: 0,
            fp_divsqrt: 0,
            mem: 0,
            branch: 0,
        });
        assert!(p.available(FuKind::IntAlu, 0));
    }
}
