//! The cycle-level out-of-order processor model.
//!
//! [`Processor`] owns all back-end state (ROB, IQ, RAT, free lists, LQ/SQ,
//! functional units, the memory hierarchy and the LTP unit) and advances one
//! cycle at a time while consuming a dynamic instruction stream through a
//! [`FrontEnd`]. The model is timing-only: values are never computed, only
//! the dependence, resource and latency behaviour is simulated, which is the
//! level of modelling the paper's analysis requires.

use crate::config::PipelineConfig;
use crate::free_list::FreeList;
use crate::frontend::FrontEnd;
use crate::iq::{IqEntry, IssueQueue};
use crate::lsq::{LoadQueue, MemDepPredictor, StoreQueue};
use crate::rat::{Rat, RegSource};
use crate::result::{ActivityCounters, OccupancyReport, RunResult};
use crate::rob::{Rob, RobEntry, RobState};
use crate::FuPool;
use ltp_core::{LtpUnit, OracleClassifier, ParkedInst, RenamedInst};
use ltp_isa::{DynInst, InstStream, OpClass, PhysReg, RegClass, SeqNum};
use ltp_mem::{AccessKind, Cycle, MemoryHierarchy, MemoryRequest};
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Offset separating floating point physical register indices from integer
/// ones, so both free lists can share the dense [`PhysReg`] namespace.
const FP_PHYS_OFFSET: u32 = 1 << 20;

/// If no instruction commits for this many cycles the simulation aborts with
/// a diagnostic: it indicates a resource-accounting deadlock.
const DEADLOCK_CYCLES: u64 = 500_000;

/// Per-instruction in-flight metadata not stored in the ROB.
#[derive(Debug, Clone)]
struct InFlight {
    inst: DynInst,
    /// Source operands resolved at rename time: physical registers...
    src_phys: Vec<PhysReg>,
    /// ... and producers that were parked at rename time (waited on by
    /// sequence number).
    src_seqs: Vec<SeqNum>,
}

/// A dispatch that passed classification but could not be placed yet because
/// the IQ, register file or LQ/SQ was full; retried the next cycle.
#[derive(Debug, Clone)]
struct PendingDispatch {
    inst: DynInst,
    src_phys: Vec<PhysReg>,
    src_seqs: Vec<SeqNum>,
    long_latency_hint: bool,
}

/// The out-of-order core.
#[derive(Debug)]
pub struct Processor {
    cfg: PipelineConfig,
    now: Cycle,
    mem: MemoryHierarchy,
    ltp: LtpUnit,
    rob: Rob,
    iq: IssueQueue,
    rat: Rat,
    int_free: FreeList,
    fp_free: FreeList,
    lq: LoadQueue,
    sq: StoreQueue,
    memdep: MemDepPredictor,
    fu: FuPool,
    inflight: HashMap<u64, InFlight>,
    completed_regs: HashSet<PhysReg>,
    released_parked_regs: HashMap<u64, PhysReg>,
    pending_completions: BinaryHeap<std::cmp::Reverse<(Cycle, u64)>>,
    pending_ll_signals: BinaryHeap<std::cmp::Reverse<(Cycle, u64)>>,
    pending_dispatch: Option<PendingDispatch>,
    force_release_pending: bool,
    committed: u64,
    loads_committed: u64,
    stores_committed: u64,
    llc_miss_loads: u64,
    last_commit_cycle: Cycle,
    occupancy: OccupancyReport,
    activity: ActivityCounters,
}

impl Processor {
    /// Builds a processor from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    #[must_use]
    pub fn new(cfg: PipelineConfig) -> Processor {
        cfg.validate();
        let mem = MemoryHierarchy::new(cfg.mem);
        let monitor_timeout = mem.typical_dram_latency() + cfg.mem.l3.latency;
        Processor {
            now: 0,
            ltp: LtpUnit::new(cfg.ltp, monitor_timeout),
            rob: Rob::new(cfg.rob_size),
            iq: IssueQueue::new(cfg.iq_size),
            rat: Rat::new(),
            int_free: FreeList::new(cfg.int_regs),
            fp_free: FreeList::new(cfg.fp_regs),
            lq: LoadQueue::new(cfg.lq_size),
            sq: StoreQueue::new(cfg.sq_size),
            memdep: MemDepPredictor::new(),
            fu: FuPool::new(&cfg.fu),
            inflight: HashMap::new(),
            completed_regs: HashSet::new(),
            released_parked_regs: HashMap::new(),
            pending_completions: BinaryHeap::new(),
            pending_ll_signals: BinaryHeap::new(),
            pending_dispatch: None,
            force_release_pending: false,
            committed: 0,
            loads_committed: 0,
            stores_committed: 0,
            llc_miss_loads: 0,
            last_commit_cycle: 0,
            occupancy: OccupancyReport::default(),
            activity: ActivityCounters::default(),
            mem,
            cfg,
        }
    }

    /// Attaches an oracle classifier (perfect classification, limit study).
    pub fn set_oracle(&mut self, oracle: OracleClassifier) {
        self.ltp.set_oracle(oracle);
    }

    /// Warms the caches by replaying memory accesses of `trace` functionally
    /// (no timing). The paper warms the caches before every simulation point.
    pub fn warm_caches(&mut self, trace: &[DynInst]) {
        for inst in trace {
            if let Some(access) = inst.mem_access() {
                let kind = if inst.op().is_store() {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                self.mem
                    .warm(&MemoryRequest::new(inst.pc(), access.addr(), kind));
            }
        }
    }

    /// The configuration of this processor.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Runs the processor on `stream` until `max_insts` instructions have
    /// committed or the stream is exhausted, and returns the run statistics.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks (no commit for a very long time),
    /// which indicates a bug in resource accounting rather than a valid
    /// simulation outcome.
    pub fn run<S: InstStream>(&mut self, stream: S, max_insts: u64) -> RunResult {
        let workload = stream.name().to_string();
        let mut fe = FrontEnd::new(stream, self.cfg.frontend_delay, self.cfg.mispredict_penalty);
        let warmup = self.cfg.warmup_insts;
        let mut warmup_done_at: Option<(Cycle, u64)> = None;

        while self.committed < max_insts && !(fe.is_drained() && self.rob.is_empty()) {
            self.cycle(&mut fe);
            if warmup > 0 && warmup_done_at.is_none() && self.committed >= warmup {
                warmup_done_at = Some((self.now, self.committed));
            }
            assert!(
                self.now - self.last_commit_cycle < DEADLOCK_CYCLES,
                "no instruction committed for {DEADLOCK_CYCLES} cycles at cycle {} \
                 (workload {}, committed {}, ROB {}, IQ {}, LTP {}, head {:?}, \
                 iq_size {}, regs {}/{}, lq {}, sq {}, ltp mode {:?}): \
                 resource accounting deadlock",
                self.now,
                workload,
                self.committed,
                self.rob.len(),
                self.iq.len(),
                self.ltp.occupancy(),
                self.rob.head().map(|e| (e.seq, e.state, e.op)),
                self.cfg.iq_size,
                self.int_free.available(),
                self.fp_free.available(),
                self.lq.len(),
                self.sq.len(),
                self.cfg.ltp.mode,
            );
        }

        let (start_cycle, start_insts) = warmup_done_at.unwrap_or((0, 0));
        RunResult {
            workload,
            cycles: self.now.saturating_sub(start_cycle).max(1),
            instructions: self.committed.saturating_sub(start_insts),
            occupancy: self.occupancy.clone(),
            activity: self.activity,
            ltp: self.ltp.stats().clone(),
            ltp_enabled_fraction: self.ltp.enabled_fraction(self.now.max(1)),
            mem: self.mem.stats(),
            branch_mispredict_rate: fe.branch_predictor().misprediction_rate(),
            loads: self.loads_committed,
            stores: self.stores_committed,
            llc_miss_loads: self.llc_miss_loads,
        }
    }

    /// Advances the machine by one cycle.
    fn cycle<S: InstStream>(&mut self, fe: &mut FrontEnd<S>) {
        self.fu.new_cycle();
        self.writeback_stage();
        self.commit_stage();
        self.ltp_release_stage();
        self.issue_stage();
        self.rename_stage(fe);
        fe.fetch(self.now, self.cfg.front_width);
        self.sample_occupancy();
        self.now += 1;
    }

    // --- register helpers ---------------------------------------------------

    fn alloc_dest(&mut self, class: RegClass) -> Option<PhysReg> {
        match class {
            RegClass::Int => self.int_free.allocate(),
            RegClass::Fp => self
                .fp_free
                .allocate()
                .map(|p| PhysReg::new(p.index() as u32 + FP_PHYS_OFFSET)),
        }
    }

    fn can_alloc_beyond_reserve(&self, class: RegClass, reserve: usize) -> bool {
        match class {
            RegClass::Int => self.int_free.can_allocate_beyond_reserve(reserve),
            RegClass::Fp => self.fp_free.can_allocate_beyond_reserve(reserve),
        }
    }

    fn free_dest(&mut self, reg: PhysReg) {
        self.completed_regs.remove(&reg);
        if (reg.index() as u32) >= FP_PHYS_OFFSET {
            self.fp_free
                .free(PhysReg::new(reg.index() as u32 - FP_PHYS_OFFSET));
        } else {
            self.int_free.free(reg);
        }
    }

    fn is_seq_done(&self, seq: SeqNum) -> bool {
        self.rob.get(seq).map(|e| e.is_completed()).unwrap_or(true)
    }

    fn resolve_sources(&self, inst: &DynInst) -> (Vec<PhysReg>, Vec<SeqNum>) {
        let mut phys = Vec::new();
        let mut seqs = Vec::new();
        for src in inst.static_inst().dataflow_srcs() {
            match self.rat.source(src) {
                RegSource::Ready => {}
                RegSource::Phys(p) => {
                    if !self.completed_regs.contains(&p) {
                        phys.push(p);
                    }
                }
                RegSource::Parked(s) => {
                    if !self.is_seq_done(s) {
                        seqs.push(s);
                    }
                }
            }
        }
        (phys, seqs)
    }

    // --- pipeline stages ----------------------------------------------------

    fn writeback_stage(&mut self) {
        // Instruction completions.
        while let Some(&std::cmp::Reverse((cycle, seq))) = self.pending_completions.peek() {
            if cycle > self.now {
                break;
            }
            self.pending_completions.pop();
            let seq = SeqNum(seq);
            if let Some(entry) = self.rob.get_mut(seq) {
                entry.state = RobState::Completed;
                if let Some(p) = entry.dest_phys {
                    self.completed_regs.insert(p);
                    self.iq.wake_phys(p);
                    self.activity.rf_writes += 1;
                }
            }
            self.iq.wake_seq(seq);
            // Safety net for ticket clearing: whatever the early-signal path
            // did, a completed instruction's ticket must be cleared so its
            // Non-Ready descendants can leave the LTP (a load predicted to
            // miss may actually have hit and never produced an early signal).
            let _ = self.ltp.on_long_latency_completing(seq, self.now);
        }
        // Early completion signals of long-latency instructions (tag hit /
        // divide countdown): clear their tickets so Non-Ready instructions
        // can be released in time (§3.2).
        while let Some(&std::cmp::Reverse((cycle, seq))) = self.pending_ll_signals.peek() {
            if cycle > self.now {
                break;
            }
            self.pending_ll_signals.pop();
            let _ = self.ltp.on_long_latency_completing(SeqNum(seq), self.now);
        }
    }

    fn commit_stage(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(entry) = self.rob.try_commit() else {
                break;
            };
            self.committed += 1;
            self.last_commit_cycle = self.now;

            match entry.prev_mapping {
                RegSource::Ready => {
                    // First rename of this architectural register: the
                    // physical register that held its initial value is
                    // recycled into the available pool (footnote 4 of the
                    // paper counts "available" registers beyond the
                    // architectural state).
                    if let Some(dst) = entry.dst {
                        match dst.class() {
                            RegClass::Int => self.int_free.add_capacity(1),
                            RegClass::Fp => self.fp_free.add_capacity(1),
                        }
                    }
                }
                RegSource::Phys(p) => self.free_dest(p),
                RegSource::Parked(s) => {
                    if let Some(p) = self.released_parked_regs.remove(&s.0) {
                        self.free_dest(p);
                    }
                }
            }

            if entry.holds_lq {
                self.lq.release(entry.seq);
            }
            if entry.holds_sq {
                // The store performs its write as it drains from the SQ.
                if let Some(infl) = self.inflight.get(&entry.seq.0) {
                    if let Some(access) = infl.inst.mem_access() {
                        let req = MemoryRequest::new(entry.pc, access.addr(), AccessKind::Store);
                        let _ = self.mem.access(self.now, &req);
                    }
                }
                self.sq.release(entry.seq);
            }

            if entry.op.is_load() {
                self.loads_committed += 1;
                if entry.long_latency {
                    self.llc_miss_loads += 1;
                }
            }
            if entry.op.is_store() {
                self.stores_committed += 1;
            }
            self.inflight.remove(&entry.seq.0);
        }
    }

    /// Whether `entry` is the oldest instruction in the machine (the ROB
    /// head). The last free register of a class is reserved for the head so
    /// that younger releases can never starve it (§5.4's "we always pick the
    /// oldest instruction").
    fn is_rob_head(&self, entry: &RobEntry) -> bool {
        self.rob.head().map(|h| h.seq) == Some(entry.seq)
    }

    /// Register-availability check for placing a released instruction: a
    /// non-head release must leave at least one register of the class free
    /// for the (current or future) ROB head.
    fn release_reg_available(&self, entry: &RobEntry) -> bool {
        let Some(dst) = entry.dst else { return true };
        let available = match dst.class() {
            RegClass::Int => self.int_free.available(),
            RegClass::Fp => self.fp_free.available(),
        };
        if self.is_rob_head(entry) {
            available > 0
        } else {
            available > 1
        }
    }

    /// Whether a *forced* release (deadlock-avoidance path) can be placed:
    /// it only needs a destination register (drawn from the §5.4 reserve) and,
    /// when LQ/SQ allocation is delayed, a memory-queue entry; the IQ is
    /// bypassed through the reserved slot.
    fn can_force_release(&self, entry: &RobEntry) -> bool {
        if !self.release_reg_available(entry) {
            return false;
        }
        self.release_lsq_available(entry)
    }

    /// LQ/SQ-availability check for releases when allocation is delayed: the
    /// last entry of each queue is reserved for the ROB head.
    fn release_lsq_available(&self, entry: &RobEntry) -> bool {
        if !self.cfg.delay_lsq_alloc {
            return true;
        }
        let head = self.is_rob_head(entry);
        if entry.op.is_load() && !entry.holds_lq {
            let ok = if head {
                self.lq.has_space()
            } else {
                self.lq.has_space_beyond_reserve(1)
            };
            if !ok {
                return false;
            }
        }
        if entry.op.is_store() && !entry.holds_sq {
            let ok = if head {
                self.sq.has_space()
            } else {
                self.sq.has_space_beyond_reserve(1)
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Whether the resources needed to place a released parked instruction
    /// are available right now.
    fn can_place_released(&self, entry: &RobEntry) -> bool {
        if !self.iq.has_space() {
            return false;
        }
        // Releases may dip into the register reserve (that is what it is
        // for), but only the ROB head may take the very last register (and,
        // with delayed LQ/SQ allocation, the last memory-queue entry).
        if !self.release_reg_available(entry) {
            return false;
        }
        self.release_lsq_available(entry)
    }

    fn place_released(&mut self, parked: ParkedInst, forced: bool) {
        let seq = parked.seq;
        let (src_phys, src_seqs, op) = {
            let infl = self
                .inflight
                .get(&seq.0)
                .expect("released instruction must be in flight");
            (infl.src_phys.clone(), infl.src_seqs.clone(), infl.inst.op())
        };

        // Allocate the destination register through the "second RAT".
        let mut dest_phys = None;
        if let Some(entry) = self.rob.get(seq) {
            if let Some(dst) = entry.dst {
                let phys = self
                    .alloc_dest(dst.class())
                    .expect("release resource check guarantees a register");
                dest_phys = Some(phys);
                if !self.rat.resolve_parked(dst, seq, phys) {
                    // A younger writer renamed the register meanwhile; its
                    // commit frees this register through the parked map.
                    self.released_parked_regs.insert(seq.0, phys);
                }
            }
        }

        let delay_lsq = self.cfg.delay_lsq_alloc;
        if let Some(entry) = self.rob.get_mut(seq) {
            entry.dest_phys = dest_phys;
            entry.state = RobState::InQueue;
            if delay_lsq {
                if entry.op.is_load() && !entry.holds_lq {
                    entry.holds_lq = true;
                }
                if entry.op.is_store() && !entry.holds_sq {
                    entry.holds_sq = true;
                }
            }
        }
        if delay_lsq {
            if op.is_load() {
                self.lq.allocate(seq);
            }
            if op.is_store() {
                self.sq.allocate(seq, true);
            }
        }

        let wait_phys = src_phys
            .into_iter()
            .filter(|p| !self.completed_regs.contains(p))
            .collect();
        let wait_seqs = src_seqs
            .into_iter()
            .filter(|s| !self.is_seq_done(*s))
            .collect();
        let entry = IqEntry {
            seq,
            fu: op.fu_kind(),
            wait_phys,
            wait_seqs,
        };
        if forced {
            self.iq.force_dispatch(entry);
        } else {
            self.iq.dispatch(entry);
        }
        self.activity.ltp_reads += 1;
        self.activity.iq_writes += 1;
    }

    fn ltp_release_stage(&mut self) {
        let boundary = self.rob.nu_wake_boundary();
        let mut released_any = false;

        // In-order (ROB proximity) releases, §3.2 / §5.2.
        while let Some(seq) = self.ltp.oldest_parked() {
            if !seq.is_older_than(boundary) {
                break;
            }
            let Some(entry) = self.rob.get(seq) else {
                break;
            };
            if !self.can_place_released(entry) {
                break;
            }
            let released = self.ltp.release_in_order(boundary, 1, self.now);
            let Some(parked) = released.into_iter().next() else {
                break;
            };
            self.place_released(parked, false);
            released_any = true;
        }

        // Out-of-order releases of Urgent instructions whose tickets cleared
        // (only meaningful when Non-Ready parking is enabled, appendix A).
        if self.ltp.config().mode.parks_non_ready() {
            loop {
                // Out-of-order releases are never the ROB head, so they must
                // always leave the last register of each class untouched.
                if !self.iq.has_space()
                    || self.int_free.available() <= 1
                    || self.fp_free.available() <= 1
                    || (self.cfg.delay_lsq_alloc && (!self.lq.has_space() || !self.sq.has_space()))
                {
                    break;
                }
                let released = self.ltp.release_ready_out_of_order(1, self.now);
                let Some(parked) = released.into_iter().next() else {
                    break;
                };
                self.place_released(parked, false);
                released_any = true;
            }
        }

        // Deadlock avoidance (§5.4): when rename stalled for resources, or
        // nothing has committed for a while, and no ordinary release made
        // progress, force the oldest parked instruction out (through the
        // reserved bypass) so it can eventually commit and free resources.
        let stalled_long = self.now.saturating_sub(self.last_commit_cycle) > 64;
        let bypass_has_room = self.cfg.iq_size == usize::MAX
            || self.iq.len() < self.cfg.iq_size.saturating_add(self.cfg.ltp_reserve);
        if (self.force_release_pending || stalled_long)
            && !released_any
            && self.ltp.occupancy() > 0
            && bypass_has_room
        {
            if let Some(seq) = self.ltp.oldest_parked() {
                let can = self
                    .rob
                    .get(seq)
                    .map(|e| self.can_force_release(e))
                    .unwrap_or(false);
                if can {
                    if let Some(parked) = self.ltp.force_release_oldest(self.now) {
                        self.place_released(parked, true);
                    }
                }
            }
        }
        self.force_release_pending = false;
    }

    fn issue_stage(&mut self) {
        let now = self.now;
        let Processor { iq, fu, .. } = self;
        let picked = iq.select(self.cfg.issue_width, |kind| {
            // Reserve the unit immediately; unpipelined units use their
            // worst-case occupancy.
            let latency = match kind {
                ltp_isa::FuKind::IntMulDiv => OpClass::IntDiv.exec_latency().cycles(),
                ltp_isa::FuKind::FpDivSqrt => OpClass::FpSqrt.exec_latency().cycles(),
                _ => 1,
            };
            fu.acquire(kind, now, latency)
        });

        for entry in picked {
            let seq = entry.seq;
            self.activity.iq_issues += 1;
            let (inst, n_srcs) = {
                let infl = self
                    .inflight
                    .get(&seq.0)
                    .expect("issued instruction must be in flight");
                (infl.inst, infl.inst.static_inst().dataflow_srcs().count())
            };
            self.activity.rf_reads += n_srcs as u64;

            let op = inst.op();
            let (completion, long_latency, ll_signal) = if op.is_load() {
                self.execute_load(&inst)
            } else if op.is_store() {
                let done = self.now + 1;
                if let Some(access) = inst.mem_access() {
                    self.sq
                        .set_address(seq, ltp_mem::line_of(access.addr()), done);
                }
                (done, false, None)
            } else {
                let latency = op.exec_latency().cycles();
                let done = self.now + latency;
                if op.is_long_latency_arith() {
                    // The divide/sqrt latency is approximately known, so the
                    // wakeup signal is sent a few cycles before completion.
                    (done, true, Some(done.saturating_sub(3)))
                } else {
                    (done, false, None)
                }
            };

            if let Some(e) = self.rob.get_mut(seq) {
                e.state = RobState::Executing;
                e.completion_cycle = completion;
                e.long_latency = e.long_latency || long_latency;
            }
            self.pending_completions
                .push(std::cmp::Reverse((completion, seq.0)));
            if let Some(signal) = ll_signal {
                self.pending_ll_signals
                    .push(std::cmp::Reverse((signal.max(self.now), seq.0)));
            }
        }
    }

    /// Executes a load: address generation, store forwarding check, cache
    /// access. Returns `(completion cycle, is long latency, early signal)`.
    fn execute_load(&mut self, inst: &DynInst) -> (Cycle, bool, Option<Cycle>) {
        let agen_done = self.now + 1;
        let Some(access) = inst.mem_access() else {
            return (agen_done, false, None);
        };
        let line = ltp_mem::line_of(access.addr());

        // Store-to-load forwarding from an older store to the same line.
        if let Some((data_ready, store_was_parked)) = self.sq.forward_for(inst.seq(), line) {
            if store_was_parked {
                // Remember this load for the §5.3 memory-dependence rule.
                self.memdep.train(inst.pc());
            }
            let done = data_ready.max(agen_done) + 1;
            self.ltp.on_load_outcome(inst.pc(), false, self.now);
            return (done, false, None);
        }

        let req = MemoryRequest::new(inst.pc(), access.addr(), AccessKind::Load);
        let result = self.mem.access(agen_done, &req);
        let long_latency = result.latency() > self.cfg.mem.l3.latency;
        self.ltp
            .on_load_outcome(inst.pc(), result.is_llc_miss(), self.now);
        let signal = if long_latency {
            Some(result.tag_known_cycle)
        } else {
            None
        };
        (result.completion_cycle, long_latency, signal)
    }

    fn rename_stage<S: InstStream>(&mut self, fe: &mut FrontEnd<S>) {
        let mut renamed = 0;

        // First, retry a dispatch that was classified earlier but could not
        // be placed for lack of resources.
        if let Some(pending) = self.pending_dispatch.take() {
            if self.try_place_dispatch(
                &pending.inst,
                pending.src_phys.clone(),
                pending.src_seqs.clone(),
                pending.long_latency_hint,
            ) {
                renamed += 1;
            } else {
                if self.ltp.occupancy() > 0 {
                    self.force_release_pending = true;
                }
                self.pending_dispatch = Some(pending);
                return;
            }
        }

        while renamed < self.cfg.front_width {
            if !self.rob.has_space() {
                break;
            }
            let Some(peek) = fe.peek_ready(self.now) else {
                break;
            };
            let op = peek.op();

            // Resources every instruction needs regardless of parking: a ROB
            // entry (checked) and, unless LQ/SQ allocation is delayed, an
            // LQ/SQ entry for memory operations.
            if !self.cfg.delay_lsq_alloc {
                if op.is_load() && !self.lq.has_space() {
                    break;
                }
                if op.is_store() && !self.sq.has_space() {
                    break;
                }
            }

            let inst = fe.pop_ready(self.now).expect("peeked instruction exists");
            let (src_phys, src_seqs) = self.resolve_sources(&inst);

            let mem_dep_parked = op.is_load() && self.memdep.predicts_parked_dependence(inst.pc());
            let rinst = RenamedInst::from_dyn(&inst).with_mem_dep_parked(mem_dep_parked);
            let decision = self.ltp.at_rename(&rinst, self.now);

            self.inflight.insert(
                inst.seq().0,
                InFlight {
                    inst,
                    src_phys: src_phys.clone(),
                    src_seqs: src_seqs.clone(),
                },
            );

            if decision.parked() {
                self.park_instruction(&inst, decision.long_latency_hint);
                self.activity.ltp_writes += 1;
                renamed += 1;
            } else if self.try_place_dispatch(
                &inst,
                src_phys.clone(),
                src_seqs.clone(),
                decision.long_latency_hint,
            ) {
                renamed += 1;
            } else {
                // Could not place: remember it and stall rename.
                if self.ltp.occupancy() > 0 {
                    self.force_release_pending = true;
                }
                self.pending_dispatch = Some(PendingDispatch {
                    inst,
                    src_phys,
                    src_seqs,
                    long_latency_hint: decision.long_latency_hint,
                });
                break;
            }
        }
    }

    /// Allocates the ROB (and, unless delayed, LQ/SQ) entry for a parked
    /// instruction and records it in the RAT as a parked producer.
    fn park_instruction(&mut self, inst: &DynInst, long_latency_hint: bool) {
        let seq = inst.seq();
        let op = inst.op();
        let dst = inst.static_inst().dst().filter(|d| !d.is_zero());

        let prev_mapping = match dst {
            Some(d) => self.rat.set_parked(d, seq),
            None => RegSource::Ready,
        };

        let mut holds_lq = false;
        let mut holds_sq = false;
        if !self.cfg.delay_lsq_alloc {
            if op.is_load() {
                self.lq.allocate(seq);
                holds_lq = true;
            }
            if op.is_store() {
                self.sq.allocate(seq, true);
                holds_sq = true;
            }
        }

        self.rob.push(RobEntry {
            seq,
            pc: inst.pc(),
            op,
            state: RobState::Parked,
            dst,
            dest_phys: None,
            prev_mapping,
            long_latency: long_latency_hint,
            holds_lq,
            holds_sq,
            was_parked: true,
            completion_cycle: 0,
        });
    }

    /// Attempts to dispatch an instruction to the IQ, allocating its
    /// destination register and LQ/SQ entry. Returns `false` when a resource
    /// is unavailable (rename must stall).
    fn try_place_dispatch(
        &mut self,
        inst: &DynInst,
        src_phys: Vec<PhysReg>,
        src_seqs: Vec<SeqNum>,
        long_latency_hint: bool,
    ) -> bool {
        let op = inst.op();
        let seq = inst.seq();
        let dst = inst.static_inst().dst().filter(|d| !d.is_zero());

        if !self.iq.has_space() {
            return false;
        }
        // Reserve a few entries of commit-freed resources for instructions
        // leaving the LTP (§5.4). The reserve is clamped so that very small
        // structures (e.g. an 8-entry LQ in the limit study) keep a usable
        // share for ordinary dispatch.
        let base_reserve = if self.cfg.ltp.mode.is_enabled() {
            self.cfg.ltp_reserve
        } else {
            0
        };
        if let Some(d) = dst {
            let regs = match d.class() {
                RegClass::Int => self.cfg.int_regs,
                RegClass::Fp => self.cfg.fp_regs,
            };
            let reserve = base_reserve.min(regs / 4);
            if !self.can_alloc_beyond_reserve(d.class(), reserve) {
                return false;
            }
        }
        if self.cfg.delay_lsq_alloc {
            if op.is_load()
                && !self
                    .lq
                    .has_space_beyond_reserve(base_reserve.min(self.cfg.lq_size / 4))
            {
                return false;
            }
            if op.is_store()
                && !self
                    .sq
                    .has_space_beyond_reserve(base_reserve.min(self.cfg.sq_size / 4))
            {
                return false;
            }
        }

        // All resources available: allocate.
        let mut dest_phys = None;
        let prev_mapping = match dst {
            Some(d) => {
                let phys = self
                    .alloc_dest(d.class())
                    .expect("availability checked above");
                dest_phys = Some(phys);
                self.rat.set_phys(d, phys)
            }
            None => RegSource::Ready,
        };

        let mut holds_lq = false;
        let mut holds_sq = false;
        if op.is_load() {
            self.lq.allocate(seq);
            holds_lq = true;
        }
        if op.is_store() {
            self.sq.allocate(seq, false);
            holds_sq = true;
        }

        self.rob.push(RobEntry {
            seq,
            pc: inst.pc(),
            op,
            state: RobState::InQueue,
            dst,
            dest_phys,
            prev_mapping,
            long_latency: long_latency_hint,
            holds_lq,
            holds_sq,
            was_parked: false,
            completion_cycle: 0,
        });

        let wait_phys = src_phys
            .into_iter()
            .filter(|p| !self.completed_regs.contains(p))
            .collect();
        let wait_seqs = src_seqs
            .into_iter()
            .filter(|s| !self.is_seq_done(*s))
            .collect();
        self.iq.dispatch(IqEntry {
            seq,
            fu: op.fu_kind(),
            wait_phys,
            wait_seqs,
        });
        self.activity.iq_writes += 1;
        true
    }

    fn sample_occupancy(&mut self) {
        let occ = &mut self.occupancy;
        occ.iq.sample_cycle(self.iq.len() as u64);
        occ.rob.sample_cycle(self.rob.len() as u64);
        occ.lq.sample_cycle(self.lq.len() as u64);
        occ.sq.sample_cycle(self.sq.len() as u64);
        occ.regs
            .sample_cycle((self.int_free.allocated() + self.fp_free.allocated()) as u64);
        occ.ltp.sample_cycle(self.ltp.occupancy() as u64);
        occ.ltp_regs.sample_cycle(self.ltp.parked_writers() as u64);
        occ.ltp_loads.sample_cycle(self.ltp.parked_loads() as u64);
        occ.ltp_stores.sample_cycle(self.ltp.parked_stores() as u64);
        occ.outstanding_misses
            .sample_cycle(self.mem.outstanding_misses(self.now) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltp_isa::{ArchReg, BranchInfo, MemAccess, Pc, StaticInst, VecStream};

    /// A simple dependent-ALU-chain program: every instruction depends on the
    /// previous one.
    fn alu_chain(n: u64) -> Vec<DynInst> {
        (0..n)
            .map(|s| {
                DynInst::new(
                    s,
                    StaticInst::new(Pc(0x1000 + 4 * (s % 16)), OpClass::IntAlu)
                        .with_dst(ArchReg::int(1))
                        .with_src(ArchReg::int(1)),
                )
            })
            .collect()
    }

    /// Independent ALU instructions across many registers (high ILP).
    fn alu_parallel(n: u64) -> Vec<DynInst> {
        (0..n)
            .map(|s| {
                let r = (s % 16 + 1) as usize;
                DynInst::new(
                    s,
                    StaticInst::new(Pc(0x2000 + 4 * (s % 32)), OpClass::IntAlu)
                        .with_dst(ArchReg::int(r))
                        .with_src(ArchReg::int(((s + 1) % 16 + 1) as usize)),
                )
            })
            .collect()
    }

    /// A pointer-chase-like loop: loads to far apart addresses feeding each
    /// other, plus a few dependent ALU ops.
    fn missy_loads(n: u64) -> Vec<DynInst> {
        let mut out = Vec::new();
        let mut seq = 0;
        for i in 0..n {
            let addr = 0x1000_0000u64 + (i.wrapping_mul(2_654_435_761) % 500_000) * 4096;
            out.push(
                DynInst::new(
                    seq,
                    StaticInst::new(Pc(0x3000), OpClass::Load)
                        .with_dst(ArchReg::int(2))
                        .with_src(ArchReg::int(1)),
                )
                .with_mem(MemAccess::qword(addr)),
            );
            seq += 1;
            out.push(DynInst::new(
                seq,
                StaticInst::new(Pc(0x3004), OpClass::IntAlu)
                    .with_dst(ArchReg::int(3))
                    .with_src(ArchReg::int(2)),
            ));
            seq += 1;
            out.push(DynInst::new(
                seq,
                StaticInst::new(Pc(0x3008), OpClass::IntAlu)
                    .with_dst(ArchReg::int(1))
                    .with_src(ArchReg::int(1)),
            ));
            seq += 1;
            out.push(
                DynInst::new(seq, StaticInst::new(Pc(0x300c), OpClass::Branch)).with_branch(
                    BranchInfo {
                        taken: true,
                        target: Pc(0x3000),
                    },
                ),
            );
            seq += 1;
        }
        out
    }

    #[test]
    fn all_instructions_commit() {
        let mut p = Processor::new(PipelineConfig::micro2015_baseline());
        let r = p.run(VecStream::new("chain", alu_chain(500)), 10_000);
        assert_eq!(r.instructions, 500);
        assert!(r.cycles > 0);
    }

    #[test]
    fn dependent_chain_is_about_one_ipc_max() {
        let mut p = Processor::new(PipelineConfig::micro2015_baseline());
        let r = p.run(VecStream::new("chain", alu_chain(2000)), 10_000);
        // A fully dependent chain of 1-cycle ALUs cannot beat 1 IPC.
        assert!(r.cpi() >= 0.99, "cpi {}", r.cpi());
        assert!(
            r.cpi() < 3.0,
            "a simple chain should not be much slower, cpi {}",
            r.cpi()
        );
    }

    #[test]
    fn independent_alus_exploit_width() {
        let mut p = Processor::new(PipelineConfig::micro2015_baseline());
        let r = p.run(VecStream::new("parallel", alu_parallel(4000)), 10_000);
        assert!(
            r.ipc() > 2.0,
            "independent ALU ops should reach multi-issue IPC, got {}",
            r.ipc()
        );
    }

    #[test]
    fn loads_that_miss_are_long_latency() {
        let mut p = Processor::new(PipelineConfig::micro2015_baseline());
        let r = p.run(VecStream::new("missy", missy_loads(200)), 10_000);
        assert!(
            r.llc_miss_loads > 50,
            "most far loads should miss, got {}",
            r.llc_miss_loads
        );
        assert!(r.mem.avg_latency() > 12.0);
        assert!(r.cpi() > 1.0);
    }

    #[test]
    fn ltp_design_commits_everything_too() {
        let mut p = Processor::new(PipelineConfig::ltp_proposed());
        let r = p.run(VecStream::new("missy", missy_loads(300)), 10_000);
        assert_eq!(r.instructions, 300 * 4);
        assert!(
            r.ltp.total_parked() > 0,
            "the LTP must park something on a missy workload"
        );
        assert!(r.ltp_enabled_fraction > 0.0);
    }

    #[test]
    fn ltp_never_loses_instructions_on_compute_bound_code() {
        let mut p = Processor::new(PipelineConfig::ltp_proposed());
        let r = p.run(VecStream::new("parallel", alu_parallel(3000)), 10_000);
        assert_eq!(r.instructions, 3000);
        // The monitor should keep LTP off nearly the whole time.
        assert!(
            r.ltp_enabled_fraction < 0.2,
            "monitor should gate LTP on compute-bound code, enabled {}",
            r.ltp_enabled_fraction
        );
    }

    #[test]
    fn small_iq_hurts_memory_level_parallelism() {
        let big = Processor::new(PipelineConfig::limit_study_unlimited().with_iq(256))
            .run(VecStream::new("missy", missy_loads(400)), 100_000);
        let small = Processor::new(PipelineConfig::limit_study_unlimited().with_iq(16))
            .run(VecStream::new("missy", missy_loads(400)), 100_000);
        assert!(
            big.cpi() <= small.cpi() + 1e-9,
            "a larger IQ must not be slower ({} vs {})",
            big.cpi(),
            small.cpi()
        );
    }

    #[test]
    fn warmup_excludes_initial_instructions() {
        let cfg = PipelineConfig::micro2015_baseline().with_warmup(100);
        let mut p = Processor::new(cfg);
        let r = p.run(VecStream::new("chain", alu_chain(400)), 10_000);
        assert_eq!(r.instructions, 300);
    }

    #[test]
    fn occupancy_and_activity_are_recorded() {
        let mut p = Processor::new(PipelineConfig::micro2015_baseline());
        let r = p.run(VecStream::new("parallel", alu_parallel(1000)), 10_000);
        assert!(r.occupancy.rob.mean() > 0.0);
        assert!(r.occupancy.iq.cycles() > 0);
        assert!(r.activity.iq_writes >= 1000);
        assert!(r.activity.iq_issues >= 1000);
        assert!(r.activity.rf_writes >= 1000);
    }
}
