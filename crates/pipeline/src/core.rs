//! The cycle-level out-of-order processor model: a thin orchestrator.
//!
//! [`Processor`] owns the machine substrate (`PipelineState`: the shared
//! free lists, functional units and memory hierarchy plus one `ThreadState`
//! — ROB, IQ, RAT, LQ/SQ, LTP unit — per hardware thread) and one
//! [`StageBus`] per thread, and advances one cycle at a time by invoking the
//! stage modules in back-to-front order (writeback → commit → release →
//! issue → rename; see [`crate::stages`]). The model is timing-only: values
//! are never computed, only the dependence, resource and latency behaviour
//! is simulated, which is the level of modelling the paper's analysis
//! requires.
//!
//! With a single hardware thread (the default) the cycle loop is exactly the
//! pre-SMT pipeline. Under SMT ([`PipelineConfig::smt`]) every stage runs
//! once per thread per cycle — the per-cycle thread order and the shared
//! front-end/issue/commit width split are decided by the configured
//! [`crate::SharePolicy`] — and [`Processor::run_smt`] drives two (or more)
//! independent instruction streams to a per-thread [`RunResult`] over one
//! shared cycle timeline.

use crate::config::{PipelineConfig, SharePolicy};
use crate::free_list::FreeList;
use crate::frontend::FrontEnd;
use crate::iq::IssueQueue;
use crate::lsq::{LoadQueue, MemDepPredictor, StoreQueue};
use crate::rat::Rat;
use crate::result::{
    ActivityCounters, DeadlockSnapshot, OccupancyReport, RunError, RunResult, SmtRunResult,
};
use crate::rob::Rob;
use crate::stages::{commit, issue, release, writeback, RenameStage, StageBus};
use crate::state::{PipelineState, ThreadState};
use crate::FuPool;
use ltp_core::{CriticalityClassifier, LtpUnit, OracleClassifier};
use ltp_isa::{DynInst, InstStream, ThreadId};
use ltp_mem::{AccessKind, Cycle, MemoryHierarchy, MemoryRequest};
use std::collections::{HashMap, HashSet};

/// If no instruction commits for this many cycles the simulation aborts with
/// a [`RunError::Deadlock`]: it indicates a resource-accounting deadlock.
const DEADLOCK_CYCLES: u64 = 500_000;

/// Upper bound on hardware threads (enforced by `PipelineConfig::validate`),
/// used to keep the per-cycle thread ordering allocation-free.
const MAX_THREADS: usize = 4;

/// A snapshot of one free list, exposed to per-cycle observers.
#[derive(Debug, Clone, Copy)]
pub struct RegFileSnapshot {
    /// Registers currently allocated.
    pub allocated: usize,
    /// Registers still available.
    pub available: usize,
    /// Current capacity of the pool (`usize::MAX` for the limit study).
    pub capacity: usize,
}

impl RegFileSnapshot {
    fn of(list: &FreeList) -> RegFileSnapshot {
        RegFileSnapshot {
            allocated: list.allocated(),
            available: list.available(),
            capacity: list.capacity(),
        }
    }
}

/// What a per-cycle observer (see [`Processor::run_observed`]) gets to see
/// after each simulated cycle: the stage-bus traffic of the cycle plus
/// resource-accounting snapshots, enough to check structural invariants
/// without exposing the mutable machine state.
#[derive(Debug)]
pub struct CycleView<'a> {
    /// The cycle that just finished.
    pub cycle: Cycle,
    /// The signals the stages exchanged during this cycle.
    pub bus: &'a StageBus,
    /// Integer free-list accounting.
    pub int_regs: RegFileSnapshot,
    /// Floating point free-list accounting.
    pub fp_regs: RegFileSnapshot,
    /// Occupied ROB entries.
    pub rob_len: usize,
    /// Instructions committed so far.
    pub committed: u64,
}

/// The out-of-order core.
#[derive(Debug)]
pub struct Processor {
    pub(crate) state: PipelineState,
    /// One signal bus per hardware thread (sequence numbers are dense per
    /// thread, so delayed signals must not mix threads).
    pub(crate) buses: Vec<StageBus>,
    /// One rename skid buffer per hardware thread.
    pub(crate) renames: Vec<RenameStage>,
}

/// Per-thread structure size under the configured sharing policy: static
/// partitioning splits the total, dynamic sharing gives every thread the
/// full size and bounds the combined occupancy in the capacity checks.
fn per_thread_size(total: usize, cfg: &PipelineConfig) -> usize {
    if cfg.smt.is_smt() && cfg.smt.policy == SharePolicy::StaticPartition && total != usize::MAX {
        (total / cfg.smt.threads).max(1)
    } else {
        total
    }
}

impl Processor {
    /// Builds a processor from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    #[must_use]
    pub fn new(cfg: PipelineConfig) -> Processor {
        cfg.validate();
        let mem = MemoryHierarchy::new(cfg.mem);
        let monitor_timeout = mem.typical_dram_latency() + cfg.mem.l3.latency;
        // Size the stage-bus timing wheels for the worst common-case delay:
        // a DRAM access behind the full cache hierarchy plus slack for bank
        // queueing. Longer delays still deliver via the wheels' far level.
        let signal_horizon = monitor_timeout + 64;
        let n = cfg.smt.threads;
        let static_split = cfg.smt.is_smt() && cfg.smt.policy == SharePolicy::StaticPartition;
        let reg_quota = |total: usize| {
            if static_split && total != usize::MAX {
                (total / n).max(1)
            } else {
                usize::MAX
            }
        };
        let mut threads: Vec<Box<ThreadState>> = (0..n)
            .map(|tid| {
                Box::new(ThreadState {
                    tid: ThreadId(tid as u8),
                    ltp: LtpUnit::new(cfg.ltp, monitor_timeout),
                    rob: Rob::new(per_thread_size(cfg.rob_size, &cfg)),
                    iq: IssueQueue::new(per_thread_size(cfg.iq_size, &cfg)),
                    rat: Rat::new(),
                    lq: LoadQueue::new(per_thread_size(cfg.lq_size, &cfg)),
                    sq: StoreQueue::new(per_thread_size(cfg.sq_size, &cfg)),
                    memdep: MemDepPredictor::new(),
                    inflight: HashMap::with_capacity(cfg.rob_size.min(1024) * 2),
                    completed_regs: HashSet::with_capacity(
                        (cfg.int_regs.min(1024) + cfg.fp_regs.min(1024)) * 2,
                    ),
                    released_parked_regs: HashMap::with_capacity(64),
                    committed: 0,
                    loads_committed: 0,
                    stores_committed: 0,
                    llc_miss_loads: 0,
                    last_commit_cycle: 0,
                    occupancy: OccupancyReport::default(),
                    activity: ActivityCounters::default(),
                    int_regs_used: 0,
                    fp_regs_used: 0,
                    int_quota: reg_quota(cfg.int_regs),
                    fp_quota: reg_quota(cfg.fp_regs),
                })
            })
            .collect();
        let thread0 = threads.remove(0);
        Processor {
            state: PipelineState {
                now: 0,
                mem,
                fu: FuPool::new(&cfg.fu),
                int_free: FreeList::new(cfg.int_regs),
                fp_free: FreeList::new(cfg.fp_regs),
                issue_scratch: Vec::with_capacity(cfg.issue_width.min(64)),
                thread: thread0,
                parked_threads: threads,
                active: 0,
                cfg,
            },
            buses: (0..n)
                .map(|_| StageBus::with_horizon(signal_horizon))
                .collect(),
            renames: (0..n).map(|_| RenameStage::default()).collect(),
        }
    }

    /// Attaches an oracle classifier (perfect classification, limit study)
    /// to thread 0.
    pub fn set_oracle(&mut self, oracle: OracleClassifier) {
        self.set_oracle_for(0, oracle);
    }

    /// Attaches an oracle classifier to the given hardware thread. Each
    /// thread of an SMT machine is analysed against its own trace.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn set_oracle_for(&mut self, tid: usize, oracle: OracleClassifier) {
        self.state.thread_mut(tid).ltp.set_oracle(oracle);
    }

    /// Replaces the criticality classifier driving thread 0's LTP unit.
    pub fn set_classifier(&mut self, classifier: Box<dyn CriticalityClassifier>) {
        self.set_classifier_for(0, classifier);
    }

    /// Replaces the criticality classifier of the given hardware thread.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn set_classifier_for(&mut self, tid: usize, classifier: Box<dyn CriticalityClassifier>) {
        self.state.thread_mut(tid).ltp.set_classifier(classifier);
    }

    /// Warms the caches by replaying memory accesses of `trace` functionally
    /// (no timing). The paper warms the caches before every simulation point;
    /// an SMT co-run warms with each thread's trace in turn.
    pub fn warm_caches(&mut self, trace: &[DynInst]) {
        for inst in trace {
            if let Some(access) = inst.mem_access() {
                let kind = if inst.op().is_store() {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                self.state
                    .mem
                    .warm(&MemoryRequest::new(inst.pc(), access.addr(), kind));
            }
        }
    }

    /// The memory hierarchy's current state. Together with
    /// [`Processor::restore_memory_state`] this lets a sweep harness warm
    /// the caches once per (trace, memory geometry) and reuse the result
    /// across detail configurations — [`Processor::warm_caches`] touches
    /// nothing but the hierarchy, so restoring a warmed hierarchy into a
    /// fresh machine is bit-identical to re-warming it.
    #[must_use]
    pub fn memory_state(&self) -> &MemoryHierarchy {
        &self.state.mem
    }

    /// Replaces the memory hierarchy state (see
    /// [`Processor::memory_state`]). Only exact when `mem` was captured
    /// from a machine with the same memory configuration; geometry is the
    /// caller's (cache key's) responsibility.
    pub fn restore_memory_state(&mut self, mem: MemoryHierarchy) {
        self.state.mem = mem;
    }

    /// The configuration of this processor.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.state.cfg
    }

    /// Current accounting of the integer and floating point register files
    /// (in that order), for resource-conservation checks.
    #[must_use]
    pub fn register_files(&self) -> (RegFileSnapshot, RegFileSnapshot) {
        (
            RegFileSnapshot::of(&self.state.int_free),
            RegFileSnapshot::of(&self.state.fp_free),
        )
    }

    /// Runs the processor on `stream` until `max_insts` instructions have
    /// committed or the stream is exhausted, and returns the run statistics.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Deadlock`] when no instruction commits for a very
    /// long time, which indicates a resource-accounting deadlock (or an
    /// intentionally starved configuration) rather than a valid simulation
    /// outcome.
    ///
    /// # Panics
    ///
    /// Panics on an SMT-configured machine; use [`Processor::run_smt`] there.
    pub fn run<S: InstStream>(&mut self, stream: S, max_insts: u64) -> Result<RunResult, RunError> {
        self.run_observed(stream, max_insts, |_| {})
    }

    /// Like [`Processor::run`], but calls `observer` with a [`CycleView`]
    /// after every simulated cycle. This is the hook the structural-invariant
    /// test-suite uses to watch the stage bus and the resource accounting.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Deadlock`] under the same conditions as
    /// [`Processor::run`].
    ///
    /// # Panics
    ///
    /// Panics on an SMT-configured machine; use [`Processor::run_smt`] there.
    pub fn run_observed<S, F>(
        &mut self,
        stream: S,
        max_insts: u64,
        mut observer: F,
    ) -> Result<RunResult, RunError>
    where
        S: InstStream,
        F: FnMut(&CycleView<'_>),
    {
        assert_eq!(
            self.state.nthreads(),
            1,
            "run/run_observed drive a single-threaded machine; use run_smt for SMT co-runs"
        );
        // An oracle-configured machine must have had its analysed oracle (or
        // a deliberate classifier override) attached; running on the built-in
        // fallback would silently produce wrongly-labelled results.
        if self.state.cfg.needs_oracle() && !self.state.thread.ltp.classifier_attached() {
            return Err(RunError::OracleNotAttached);
        }
        let workload = stream.name().to_string();
        let mut fes = [FrontEnd::new(
            stream,
            self.state.cfg.frontend_delay,
            self.state.cfg.mispredict_penalty,
        )];
        let warmup = self.state.cfg.warmup_insts;
        let mut warmup_done_at: Option<(Cycle, u64)> = None;

        // NOTE: this loop is the canonical single-thread run loop. Two
        // mirrors exist with different stop/measure conditions —
        // `Processor::run_to_snapshot` (below) and `ResumedRun::run_inner`
        // (snapshot.rs) — and must track any semantic change here; the
        // restore-equivalence tests (`tests/snapshot.rs`) fail on drift.
        while self.state.thread.committed < max_insts
            && !(fes[0].is_drained() && self.state.thread.rob.is_empty())
        {
            self.cycle(&mut fes, u64::MAX);
            observer(&CycleView {
                cycle: self.state.now - 1,
                bus: &self.buses[0],
                int_regs: RegFileSnapshot::of(&self.state.int_free),
                fp_regs: RegFileSnapshot::of(&self.state.fp_free),
                rob_len: self.state.thread.rob.len(),
                committed: self.state.thread.committed,
            });
            if warmup > 0 && warmup_done_at.is_none() && self.state.thread.committed >= warmup {
                warmup_done_at = Some((self.state.now, self.state.thread.committed));
            }
            if let Some(err) = self.deadlock_check(&workload) {
                return Err(err);
            }
        }

        Ok(self.assemble_result(
            workload,
            warmup_done_at.unwrap_or((0, 0)),
            fes[0].branch_predictor().misprediction_rate(),
        ))
    }

    /// Runs the machine in detail until `checkpoint_at` instructions have
    /// committed (or the stream drains first) and captures a [`crate::Snapshot`] of
    /// the complete machine state at that cycle boundary. Restoring the
    /// snapshot ([`crate::Snapshot::resume`]) and finishing the run is bit-for-bit
    /// identical to never having stopped.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Deadlock`] / [`RunError::OracleNotAttached`] under
    /// the same conditions as [`Processor::run`], and
    /// [`RunError::SnapshotUnsupported`] when the machine cannot be
    /// checkpointed (SMT configuration, or a custom classifier without
    /// snapshot support).
    pub fn run_to_snapshot<S: InstStream>(
        &mut self,
        stream: S,
        checkpoint_at: u64,
    ) -> Result<crate::Snapshot, RunError> {
        if self.state.nthreads() != 1 {
            return Err(RunError::SnapshotUnsupported(
                crate::SnapshotError::SmtUnsupported.to_string(),
            ));
        }
        if self.state.cfg.needs_oracle() && !self.state.thread.ltp.classifier_attached() {
            return Err(RunError::OracleNotAttached);
        }
        let workload = stream.name().to_string();
        let mut fes = [FrontEnd::new(
            stream,
            self.state.cfg.frontend_delay,
            self.state.cfg.mispredict_penalty,
        )];
        let warmup = self.state.cfg.warmup_insts;
        let mut warmup_done_at: Option<(Cycle, u64)> = None;

        while self.state.thread.committed < checkpoint_at
            && !(fes[0].is_drained() && self.state.thread.rob.is_empty())
        {
            self.cycle(&mut fes, u64::MAX);
            if warmup > 0 && warmup_done_at.is_none() && self.state.thread.committed >= warmup {
                warmup_done_at = Some((self.state.now, self.state.thread.committed));
            }
            if let Some(err) = self.deadlock_check(&workload) {
                return Err(err);
            }
        }

        crate::Snapshot::capture(
            self,
            fes[0].export_state(),
            self.renames[0].pending.clone(),
            warmup_done_at,
        )
        .map_err(|e| RunError::SnapshotUnsupported(e.to_string()))
    }

    /// Single-thread deadlock watchdog shared by every run loop.
    pub(crate) fn deadlock_check(&self, workload: &str) -> Option<RunError> {
        if self.state.now - self.state.thread.last_commit_cycle >= DEADLOCK_CYCLES {
            Some(RunError::Deadlock {
                cycle: self.state.now,
                snapshot: Box::new(self.deadlock_snapshot(workload.to_string())),
            })
        } else {
            None
        }
    }

    /// Builds the [`RunResult`] of the active single-thread run, measuring
    /// from `start` (`(cycle, committed)` at the warmup boundary, or zeros).
    pub(crate) fn assemble_result(
        &self,
        workload: String,
        start: (Cycle, u64),
        branch_mispredict_rate: f64,
    ) -> RunResult {
        let (start_cycle, start_insts) = start;
        let t = &self.state.thread;
        RunResult {
            workload,
            cycles: self.state.now.saturating_sub(start_cycle).max(1),
            instructions: t.committed.saturating_sub(start_insts),
            occupancy: t.occupancy.clone(),
            activity: t.activity,
            ltp: t.ltp.stats().clone(),
            ltp_enabled_fraction: t.ltp.enabled_fraction(self.state.now.max(1)),
            mem: self.state.mem.stats(),
            branch_mispredict_rate,
            loads: t.loads_committed,
            stores: t.stores_committed,
            llc_miss_loads: t.llc_miss_loads,
        }
    }

    /// Runs an SMT co-run: one independent instruction stream per hardware
    /// thread over the shared back end, until every stream has drained or
    /// reached its `max_insts_per_thread` budget. A thread that reaches the
    /// budget stops fetching and renaming and drains its back end (its
    /// committed count can therefore exceed the budget by the instructions
    /// already in flight); the co-run ends when every thread has drained.
    /// Returns one [`RunResult`] per thread on the shared cycle timeline.
    ///
    /// Pipeline warm-up (`PipelineConfig::warmup_insts`) is not applied to
    /// co-runs; statistics cover the whole run.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Deadlock`] when no thread commits for a very long
    /// time, and [`RunError::OracleNotAttached`] when the configuration
    /// selects the oracle classifier but not every thread has one attached
    /// (see [`Processor::set_oracle_for`]).
    ///
    /// # Panics
    ///
    /// Panics if the number of streams does not match the configured thread
    /// count.
    pub fn run_smt<S: InstStream>(
        &mut self,
        streams: Vec<S>,
        max_insts_per_thread: u64,
    ) -> Result<SmtRunResult, RunError> {
        assert_eq!(
            streams.len(),
            self.state.nthreads(),
            "one instruction stream per configured hardware thread"
        );
        if self.state.cfg.needs_oracle()
            && !self
                .state
                .all_threads()
                .all(|t| t.ltp.classifier_attached())
        {
            return Err(RunError::OracleNotAttached);
        }
        let workloads: Vec<String> = streams.iter().map(|s| s.name().to_string()).collect();
        let mut fes: Vec<FrontEnd<S>> = streams
            .into_iter()
            .map(|s| {
                FrontEnd::new(
                    s,
                    self.state.cfg.frontend_delay,
                    self.state.cfg.mispredict_penalty,
                )
            })
            .collect();

        let n = self.state.nthreads();
        let thread_active = |t: &ThreadState, fe: &FrontEnd<S>| {
            let starved = fe.is_drained() || t.committed >= max_insts_per_thread;
            !(starved && t.rob.is_empty())
        };
        // Cycle at which each thread drained, so per-thread IPC is measured
        // over the thread's own active window rather than being diluted by a
        // co-runner's tail (the usual co-run methodology).
        let mut finish: Vec<Option<Cycle>> = vec![None; n];
        while (0..n).any(|i| thread_active(self.state.thread_ref(i), &fes[i])) {
            self.cycle(&mut fes, max_insts_per_thread);
            for (i, done) in finish.iter_mut().enumerate() {
                if done.is_none() && !thread_active(self.state.thread_ref(i), &fes[i]) {
                    *done = Some(self.state.now);
                }
            }
            let last_commit = self
                .state
                .all_threads()
                .map(|t| t.last_commit_cycle)
                .max()
                .unwrap_or(0);
            if self.state.now - last_commit >= DEADLOCK_CYCLES {
                return Err(RunError::Deadlock {
                    cycle: self.state.now,
                    snapshot: Box::new(self.deadlock_snapshot(workloads.join("+"))),
                });
            }
        }

        let cycles = self.state.now.max(1);
        let mem_stats = self.state.mem.stats();
        let threads = workloads
            .into_iter()
            .zip(finish)
            .enumerate()
            .map(|(i, (workload, done))| {
                let t = self.state.thread_ref(i);
                RunResult {
                    workload,
                    cycles: done.unwrap_or(cycles).max(1),
                    instructions: t.committed,
                    occupancy: t.occupancy.clone(),
                    activity: t.activity,
                    ltp: t.ltp.stats().clone(),
                    ltp_enabled_fraction: t.ltp.enabled_fraction(done.unwrap_or(cycles).max(1)),
                    mem: mem_stats,
                    branch_mispredict_rate: fes[i].branch_predictor().misprediction_rate(),
                    loads: t.loads_committed,
                    stores: t.stores_committed,
                    llc_miss_loads: t.llc_miss_loads,
                }
            })
            .collect();
        Ok(SmtRunResult { cycles, threads })
    }

    /// The per-cycle thread order: the primary thread gets first claim on
    /// the shared front-end, issue and commit bandwidth. Round-robin by
    /// cycle parity for the static and plain-shared policies, fewest
    /// front-end + IQ instructions first (ICOUNT) for `SharePolicy::Icount`.
    fn thread_order<S: InstStream>(&self, fes: &[FrontEnd<S>]) -> ([usize; MAX_THREADS], usize) {
        let n = self.state.nthreads();
        let mut order = [0usize; MAX_THREADS];
        if n == 1 {
            return (order, 1);
        }
        match self.state.cfg.smt.policy {
            SharePolicy::Icount => {
                for (i, slot) in order.iter_mut().take(n).enumerate() {
                    *slot = i;
                }
                order[..n].sort_unstable_by_key(|&t| {
                    (self.state.thread_ref(t).iq.len() + fes[t].backlog(), t)
                });
            }
            SharePolicy::StaticPartition | SharePolicy::Shared => {
                let primary = (self.state.now as usize) % n;
                for (i, slot) in order.iter_mut().take(n).enumerate() {
                    *slot = (primary + i) % n;
                }
            }
        }
        (order, n)
    }

    /// Advances the machine by one cycle, driving the stages back-to-front.
    /// Under SMT every stage runs once per thread (in the policy's priority
    /// order) before the next stage — the faithful model of SMT stages
    /// operating concurrently — so, e.g., both threads' release stages see
    /// the IQ entries freed by both threads' commits before either thread's
    /// rename claims shared capacity. The commit, issue, front-end and fetch
    /// widths are shared budgets; the primary thread has first claim.
    ///
    /// A thread whose committed count has reached `insts_cap` no longer
    /// renames or fetches (it drains in flight). Single-thread runs pass
    /// `u64::MAX`: their run loop stops the whole simulation at the cap
    /// instead, which keeps that path bit-identical to the pre-SMT machine.
    pub(crate) fn cycle<S: InstStream>(&mut self, fes: &mut [FrontEnd<S>], insts_cap: u64) {
        let (order, n) = self.thread_order(fes);
        let order = &order[..n];
        let Processor {
            state,
            buses,
            renames,
        } = self;
        for &t in order {
            buses[t].begin_cycle();
        }
        state.fu.new_cycle();
        for &t in order {
            state.activate(t);
            writeback::run(state, &mut buses[t]);
        }
        let mut commit_budget = state.cfg.commit_width;
        for &t in order {
            state.activate(t);
            commit_budget =
                commit_budget.saturating_sub(commit::run(state, &mut buses[t], commit_budget));
        }
        for &t in order {
            state.activate(t);
            release::run(state, &mut buses[t]);
        }
        let mut issue_budget = state.cfg.issue_width;
        for &t in order {
            state.activate(t);
            issue_budget =
                issue_budget.saturating_sub(issue::run(state, &mut buses[t], issue_budget));
        }
        let mut rename_budget = state.cfg.front_width;
        for &t in order {
            state.activate(t);
            if state.thread.committed >= insts_cap {
                continue;
            }
            // The pending-dispatch retry does not consume budget it was not
            // given, so a thread can rename one instruction past an exhausted
            // share; saturate rather than underflow.
            rename_budget = rename_budget.saturating_sub(renames[t].run(
                state,
                &mut buses[t],
                &mut fes[t],
                rename_budget,
            ));
        }
        let mut fetch_budget = state.cfg.front_width;
        for &t in order {
            if state.thread_ref(t).committed >= insts_cap {
                continue;
            }
            let before = fes[t].fetched();
            fes[t].fetch(state.now, fetch_budget);
            fetch_budget = fetch_budget.saturating_sub((fes[t].fetched() - before) as usize);
            if fetch_budget == 0 {
                break;
            }
        }
        let outstanding = state.mem.outstanding_misses(state.now) as u64;
        for &t in order {
            state.activate(t);
            state.sample_occupancy(outstanding);
        }
        state.now += 1;
    }

    fn deadlock_snapshot(&self, workload: String) -> DeadlockSnapshot {
        let state = &self.state;
        let head_thread = state
            .all_threads()
            .find(|t| !t.rob.is_empty())
            .unwrap_or(&state.thread);
        DeadlockSnapshot {
            workload,
            committed: state.all_threads().map(|t| t.committed).sum(),
            rob_len: state.all_threads().map(|t| t.rob.len()).sum(),
            iq_len: state.iq_total(),
            ltp_occupancy: state.all_threads().map(|t| t.ltp.occupancy()).sum(),
            head: head_thread.rob.head().map(|e| (e.seq, e.state, e.op)),
            iq_size: state.cfg.iq_size,
            int_regs_available: state.int_free.available(),
            fp_regs_available: state.fp_free.available(),
            lq_len: state.all_threads().map(|t| t.lq.len()).sum(),
            sq_len: state.all_threads().map(|t| t.sq.len()).sum(),
            ltp_mode: state.cfg.ltp.mode,
        }
    }
}
