//! The cycle-level out-of-order processor model: a thin orchestrator.
//!
//! [`Processor`] owns the shared machine substrate (`PipelineState`: ROB, IQ,
//! RAT, free lists, LQ/SQ, functional units, memory hierarchy, LTP unit) and
//! a [`StageBus`], and advances one cycle at a time by invoking the stage
//! modules in back-to-front order (writeback → commit → release → issue →
//! rename; see [`crate::stages`]). The model is timing-only: values are never
//! computed, only the dependence, resource and latency behaviour is
//! simulated, which is the level of modelling the paper's analysis requires.

use crate::config::PipelineConfig;
use crate::free_list::FreeList;
use crate::frontend::FrontEnd;
use crate::iq::IssueQueue;
use crate::lsq::{LoadQueue, MemDepPredictor, StoreQueue};
use crate::rat::Rat;
use crate::result::{ActivityCounters, DeadlockSnapshot, OccupancyReport, RunError, RunResult};
use crate::rob::Rob;
use crate::stages::{commit, issue, release, writeback, RenameStage, StageBus};
use crate::state::PipelineState;
use crate::FuPool;
use ltp_core::{CriticalityClassifier, LtpUnit, OracleClassifier};
use ltp_isa::{DynInst, InstStream};
use ltp_mem::{AccessKind, Cycle, MemoryHierarchy, MemoryRequest};
use std::collections::{HashMap, HashSet};

/// If no instruction commits for this many cycles the simulation aborts with
/// a [`RunError::Deadlock`]: it indicates a resource-accounting deadlock.
const DEADLOCK_CYCLES: u64 = 500_000;

/// A snapshot of one free list, exposed to per-cycle observers.
#[derive(Debug, Clone, Copy)]
pub struct RegFileSnapshot {
    /// Registers currently allocated.
    pub allocated: usize,
    /// Registers still available.
    pub available: usize,
    /// Current capacity of the pool (`usize::MAX` for the limit study).
    pub capacity: usize,
}

impl RegFileSnapshot {
    fn of(list: &FreeList) -> RegFileSnapshot {
        RegFileSnapshot {
            allocated: list.allocated(),
            available: list.available(),
            capacity: list.capacity(),
        }
    }
}

/// What a per-cycle observer (see [`Processor::run_observed`]) gets to see
/// after each simulated cycle: the stage-bus traffic of the cycle plus
/// resource-accounting snapshots, enough to check structural invariants
/// without exposing the mutable machine state.
#[derive(Debug)]
pub struct CycleView<'a> {
    /// The cycle that just finished.
    pub cycle: Cycle,
    /// The signals the stages exchanged during this cycle.
    pub bus: &'a StageBus,
    /// Integer free-list accounting.
    pub int_regs: RegFileSnapshot,
    /// Floating point free-list accounting.
    pub fp_regs: RegFileSnapshot,
    /// Occupied ROB entries.
    pub rob_len: usize,
    /// Instructions committed so far.
    pub committed: u64,
}

/// The out-of-order core.
#[derive(Debug)]
pub struct Processor {
    state: PipelineState,
    bus: StageBus,
    rename: RenameStage,
}

impl Processor {
    /// Builds a processor from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    #[must_use]
    pub fn new(cfg: PipelineConfig) -> Processor {
        cfg.validate();
        let mem = MemoryHierarchy::new(cfg.mem);
        let monitor_timeout = mem.typical_dram_latency() + cfg.mem.l3.latency;
        // Size the stage-bus timing wheels for the worst common-case delay:
        // a DRAM access behind the full cache hierarchy plus slack for bank
        // queueing. Longer delays still deliver via the wheels' far level.
        let signal_horizon = monitor_timeout + 64;
        Processor {
            state: PipelineState {
                now: 0,
                ltp: LtpUnit::new(cfg.ltp, monitor_timeout),
                rob: Rob::new(cfg.rob_size),
                iq: IssueQueue::new(cfg.iq_size),
                rat: Rat::new(),
                int_free: FreeList::new(cfg.int_regs),
                fp_free: FreeList::new(cfg.fp_regs),
                lq: LoadQueue::new(cfg.lq_size),
                sq: StoreQueue::new(cfg.sq_size),
                memdep: MemDepPredictor::new(),
                fu: FuPool::new(&cfg.fu),
                issue_scratch: Vec::with_capacity(cfg.issue_width.min(64)),
                inflight: HashMap::with_capacity(cfg.rob_size.min(1024) * 2),
                completed_regs: HashSet::with_capacity(
                    (cfg.int_regs.min(1024) + cfg.fp_regs.min(1024)) * 2,
                ),
                released_parked_regs: HashMap::with_capacity(64),
                committed: 0,
                loads_committed: 0,
                stores_committed: 0,
                llc_miss_loads: 0,
                last_commit_cycle: 0,
                occupancy: OccupancyReport::default(),
                activity: ActivityCounters::default(),
                mem,
                cfg,
            },
            bus: StageBus::with_horizon(signal_horizon),
            rename: RenameStage::default(),
        }
    }

    /// Attaches an oracle classifier (perfect classification, limit study).
    pub fn set_oracle(&mut self, oracle: OracleClassifier) {
        self.state.ltp.set_oracle(oracle);
    }

    /// Replaces the criticality classifier driving the LTP unit.
    pub fn set_classifier(&mut self, classifier: Box<dyn CriticalityClassifier>) {
        self.state.ltp.set_classifier(classifier);
    }

    /// Warms the caches by replaying memory accesses of `trace` functionally
    /// (no timing). The paper warms the caches before every simulation point.
    pub fn warm_caches(&mut self, trace: &[DynInst]) {
        for inst in trace {
            if let Some(access) = inst.mem_access() {
                let kind = if inst.op().is_store() {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                self.state
                    .mem
                    .warm(&MemoryRequest::new(inst.pc(), access.addr(), kind));
            }
        }
    }

    /// The configuration of this processor.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.state.cfg
    }

    /// Current accounting of the integer and floating point register files
    /// (in that order), for resource-conservation checks.
    #[must_use]
    pub fn register_files(&self) -> (RegFileSnapshot, RegFileSnapshot) {
        (
            RegFileSnapshot::of(&self.state.int_free),
            RegFileSnapshot::of(&self.state.fp_free),
        )
    }

    /// Runs the processor on `stream` until `max_insts` instructions have
    /// committed or the stream is exhausted, and returns the run statistics.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Deadlock`] when no instruction commits for a very
    /// long time, which indicates a resource-accounting deadlock (or an
    /// intentionally starved configuration) rather than a valid simulation
    /// outcome.
    pub fn run<S: InstStream>(&mut self, stream: S, max_insts: u64) -> Result<RunResult, RunError> {
        self.run_observed(stream, max_insts, |_| {})
    }

    /// Like [`Processor::run`], but calls `observer` with a [`CycleView`]
    /// after every simulated cycle. This is the hook the structural-invariant
    /// test-suite uses to watch the stage bus and the resource accounting.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Deadlock`] under the same conditions as
    /// [`Processor::run`].
    pub fn run_observed<S, F>(
        &mut self,
        stream: S,
        max_insts: u64,
        mut observer: F,
    ) -> Result<RunResult, RunError>
    where
        S: InstStream,
        F: FnMut(&CycleView<'_>),
    {
        // An oracle-configured machine must have had its analysed oracle (or
        // a deliberate classifier override) attached; running on the built-in
        // fallback would silently produce wrongly-labelled results.
        if self.state.cfg.needs_oracle() && !self.state.ltp.classifier_attached() {
            return Err(RunError::OracleNotAttached);
        }
        let workload = stream.name().to_string();
        let mut fe = FrontEnd::new(
            stream,
            self.state.cfg.frontend_delay,
            self.state.cfg.mispredict_penalty,
        );
        let warmup = self.state.cfg.warmup_insts;
        let mut warmup_done_at: Option<(Cycle, u64)> = None;

        while self.state.committed < max_insts && !(fe.is_drained() && self.state.rob.is_empty()) {
            self.cycle(&mut fe);
            observer(&CycleView {
                cycle: self.state.now - 1,
                bus: &self.bus,
                int_regs: RegFileSnapshot::of(&self.state.int_free),
                fp_regs: RegFileSnapshot::of(&self.state.fp_free),
                rob_len: self.state.rob.len(),
                committed: self.state.committed,
            });
            if warmup > 0 && warmup_done_at.is_none() && self.state.committed >= warmup {
                warmup_done_at = Some((self.state.now, self.state.committed));
            }
            if self.state.now - self.state.last_commit_cycle >= DEADLOCK_CYCLES {
                return Err(RunError::Deadlock {
                    cycle: self.state.now,
                    snapshot: Box::new(self.deadlock_snapshot(workload)),
                });
            }
        }

        let (start_cycle, start_insts) = warmup_done_at.unwrap_or((0, 0));
        let state = &self.state;
        Ok(RunResult {
            workload,
            cycles: state.now.saturating_sub(start_cycle).max(1),
            instructions: state.committed.saturating_sub(start_insts),
            occupancy: state.occupancy.clone(),
            activity: state.activity,
            ltp: state.ltp.stats().clone(),
            ltp_enabled_fraction: state.ltp.enabled_fraction(state.now.max(1)),
            mem: state.mem.stats(),
            branch_mispredict_rate: fe.branch_predictor().misprediction_rate(),
            loads: state.loads_committed,
            stores: state.stores_committed,
            llc_miss_loads: state.llc_miss_loads,
        })
    }

    /// Advances the machine by one cycle, driving the stages back-to-front.
    fn cycle<S: InstStream>(&mut self, fe: &mut FrontEnd<S>) {
        let state = &mut self.state;
        let bus = &mut self.bus;
        bus.begin_cycle();
        state.fu.new_cycle();
        writeback::run(state, bus);
        commit::run(state, bus);
        release::run(state, bus);
        issue::run(state, bus);
        self.rename.run(state, bus, fe);
        fe.fetch(state.now, state.cfg.front_width);
        state.sample_occupancy();
        state.now += 1;
    }

    fn deadlock_snapshot(&self, workload: String) -> DeadlockSnapshot {
        let state = &self.state;
        DeadlockSnapshot {
            workload,
            committed: state.committed,
            rob_len: state.rob.len(),
            iq_len: state.iq.len(),
            ltp_occupancy: state.ltp.occupancy(),
            head: state.rob.head().map(|e| (e.seq, e.state, e.op)),
            iq_size: state.cfg.iq_size,
            int_regs_available: state.int_free.available(),
            fp_regs_available: state.fp_free.available(),
            lq_len: state.lq.len(),
            sq_len: state.sq.len(),
            ltp_mode: state.cfg.ltp.mode,
        }
    }
}
