//! The register allocation table (RAT) of the pipeline, with support for
//! *parked* producers that have not yet been assigned a physical register.

use ltp_isa::{ArchReg, PhysReg, SeqNum, NUM_ARCH_REGS};

/// Where the current value of an architectural register comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegSource {
    /// The architectural (pre-existing) value: always ready, owns no
    /// allocated physical register.
    Ready,
    /// A physical register written by an in-flight or committed instruction.
    Phys(PhysReg),
    /// The producing instruction is parked in LTP and has no physical
    /// register yet; consumers must wait for that instruction (identified by
    /// sequence number) to be released and executed.
    Parked(SeqNum),
}

/// The architectural-to-physical register allocation table.
#[derive(Debug, Clone)]
pub struct Rat {
    pub(crate) map: Vec<RegSource>,
}

impl Default for Rat {
    fn default() -> Self {
        Rat::new()
    }
}

impl Rat {
    /// Creates a RAT with every architectural register mapped to its ready
    /// architectural value.
    #[must_use]
    pub fn new() -> Rat {
        Rat {
            map: vec![RegSource::Ready; NUM_ARCH_REGS],
        }
    }

    /// The current source of `reg`. The zero register is always ready.
    #[must_use]
    pub fn source(&self, reg: ArchReg) -> RegSource {
        if reg.is_zero() {
            RegSource::Ready
        } else {
            self.map[reg.index()]
        }
    }

    /// Renames `reg` to physical register `phys`, returning the previous
    /// mapping (to be freed when the renaming instruction commits).
    pub fn set_phys(&mut self, reg: ArchReg, phys: PhysReg) -> RegSource {
        if reg.is_zero() {
            return RegSource::Ready;
        }
        std::mem::replace(&mut self.map[reg.index()], RegSource::Phys(phys))
    }

    /// Marks `reg` as produced by the parked instruction `seq`, returning the
    /// previous mapping.
    pub fn set_parked(&mut self, reg: ArchReg, seq: SeqNum) -> RegSource {
        if reg.is_zero() {
            return RegSource::Ready;
        }
        std::mem::replace(&mut self.map[reg.index()], RegSource::Parked(seq))
    }

    /// Called when the parked instruction `seq` is released from LTP and
    /// finally receives physical register `phys`: if `reg` still names `seq`
    /// as its producer, the mapping is updated (this is the function of the
    /// paper's second RAT). Returns whether the mapping was updated; when it
    /// returns `false` a younger instruction has renamed the register in the
    /// meantime and the released instruction's result is not architecturally
    /// visible through the RAT.
    pub fn resolve_parked(&mut self, reg: ArchReg, seq: SeqNum, phys: PhysReg) -> bool {
        if reg.is_zero() {
            return false;
        }
        if self.map[reg.index()] == RegSource::Parked(seq) {
            self.map[reg.index()] = RegSource::Phys(phys);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_mappings_are_ready() {
        let rat = Rat::new();
        assert_eq!(rat.source(ArchReg::int(5)), RegSource::Ready);
        assert_eq!(rat.source(ArchReg::fp(5)), RegSource::Ready);
    }

    #[test]
    fn zero_register_is_always_ready() {
        let mut rat = Rat::new();
        assert_eq!(
            rat.set_phys(ArchReg::ZERO, PhysReg::new(3)),
            RegSource::Ready
        );
        assert_eq!(rat.source(ArchReg::ZERO), RegSource::Ready);
        assert!(!rat.resolve_parked(ArchReg::ZERO, SeqNum(1), PhysReg::new(3)));
    }

    #[test]
    fn rename_returns_previous_mapping() {
        let mut rat = Rat::new();
        let prev = rat.set_phys(ArchReg::int(1), PhysReg::new(10));
        assert_eq!(prev, RegSource::Ready);
        let prev = rat.set_phys(ArchReg::int(1), PhysReg::new(11));
        assert_eq!(prev, RegSource::Phys(PhysReg::new(10)));
        assert_eq!(
            rat.source(ArchReg::int(1)),
            RegSource::Phys(PhysReg::new(11))
        );
    }

    #[test]
    fn parked_then_resolved() {
        let mut rat = Rat::new();
        rat.set_parked(ArchReg::int(2), SeqNum(7));
        assert_eq!(rat.source(ArchReg::int(2)), RegSource::Parked(SeqNum(7)));
        assert!(rat.resolve_parked(ArchReg::int(2), SeqNum(7), PhysReg::new(4)));
        assert_eq!(
            rat.source(ArchReg::int(2)),
            RegSource::Phys(PhysReg::new(4))
        );
    }

    #[test]
    fn resolution_skipped_when_overwritten_by_younger() {
        let mut rat = Rat::new();
        rat.set_parked(ArchReg::int(2), SeqNum(7));
        // A younger instruction renames the same register before the parked
        // one is released.
        rat.set_phys(ArchReg::int(2), PhysReg::new(9));
        assert!(!rat.resolve_parked(ArchReg::int(2), SeqNum(7), PhysReg::new(4)));
        assert_eq!(
            rat.source(ArchReg::int(2)),
            RegSource::Phys(PhysReg::new(9))
        );
    }

    #[test]
    fn resolution_skipped_for_wrong_seq() {
        let mut rat = Rat::new();
        rat.set_parked(ArchReg::int(2), SeqNum(7));
        assert!(!rat.resolve_parked(ArchReg::int(2), SeqNum(8), PhysReg::new(4)));
        assert_eq!(rat.source(ArchReg::int(2)), RegSource::Parked(SeqNum(7)));
    }
}
