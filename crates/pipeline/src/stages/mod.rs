//! The pipeline stages and the signal bus that connects them.
//!
//! Each stage module implements exactly one of the per-cycle phases of
//! [`crate::Processor::cycle`]; the orchestrator calls them back-to-front
//! (writeback → commit → release → issue → rename), the classic trick that
//! lets one pass per cycle model same-cycle forwarding without double
//! processing. Stages share the machine substrate (`PipelineState`) and
//! exchange signals — wakeups, register frees, ticket clears, commit slots,
//! scheduled completions, the force-release latch — through the [`StageBus`].

mod bus;
pub(crate) mod commit;
pub(crate) mod issue;
pub(crate) mod release;
pub(crate) mod rename;
mod wheel;
pub(crate) mod writeback;

pub use bus::{CommitSlot, StageBus};
pub(crate) use rename::RenameStage;
pub use wheel::TimingWheel;
