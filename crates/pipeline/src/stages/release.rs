//! LTP release stage: move parked instructions into the issue queue.
//!
//! Three release paths, in priority order (§3.2 / §5.2 / §5.4):
//!
//! 1. **In-order** (ROB proximity): parked instructions older than the
//!    Non-Urgent wakeup boundary are released in program order.
//! 2. **Out-of-order** (tickets): Urgent instructions whose tickets have all
//!    cleared leave early (appendix A; only with Non-Ready parking).
//! 3. **Forced** (deadlock avoidance): when rename stalled on resources (the
//!    [`StageBus`] force-release latch) or nothing committed for a while, the
//!    oldest parked instruction is pushed out through the reserved bypass.
//!
//! Under SMT each thread has its own LTP unit and release stage; the
//! resource checks go through the shared-capacity helpers on
//! [`PipelineState`], so a release only proceeds when the *combined*
//! occupancy allows it.

use crate::iq::IqEntry;
use crate::rob::RobState;
use crate::stages::StageBus;
use crate::state::PipelineState;
use ltp_core::ParkedInst;
use ltp_isa::RegClass;

/// Runs the release stage of the active thread for one cycle.
pub(crate) fn run(state: &mut PipelineState, bus: &mut StageBus) {
    let boundary = state.t().rob.nu_wake_boundary();
    let mut released_any = false;

    // In-order (ROB proximity) releases, §3.2 / §5.2.
    while let Some(seq) = state.t().ltp.oldest_parked() {
        if !seq.is_older_than(boundary) {
            break;
        }
        let Some(entry) = state.t().rob.get(seq) else {
            break;
        };
        if !state.can_place_released(entry) {
            break;
        }
        let now = state.now;
        let Some(parked) = state.tm().ltp.pop_release_in_order(boundary, now) else {
            break;
        };
        place_released(state, bus, parked, false);
        released_any = true;
    }

    // Out-of-order releases of Urgent instructions whose tickets cleared
    // (only meaningful when Non-Ready parking is enabled, appendix A).
    if state.t().ltp.config().mode.parks_non_ready() {
        loop {
            // Out-of-order releases are never the ROB head, so they must
            // always leave the last register of each class untouched.
            if !state.iq_has_space()
                || state.regs_available(RegClass::Int) <= 1
                || state.regs_available(RegClass::Fp) <= 1
                || (state.cfg.delay_lsq_alloc && (!state.lq_has_space() || !state.sq_has_space()))
            {
                break;
            }
            let now = state.now;
            let Some(parked) = state.tm().ltp.pop_release_ready_out_of_order(now) else {
                break;
            };
            place_released(state, bus, parked, false);
            released_any = true;
        }
    }

    // Deadlock avoidance (§5.4): when rename stalled for resources, or
    // nothing has committed for a while, and no ordinary release made
    // progress, force the oldest parked instruction out (through the
    // reserved bypass) so it can eventually commit and free resources.
    let force_requested = bus.take_force_release();
    let stalled_long = state.now.saturating_sub(state.t().last_commit_cycle) > 64;
    let bypass_has_room = state.iq_bypass_has_room();
    if (force_requested || stalled_long)
        && !released_any
        && state.t().ltp.occupancy() > 0
        && bypass_has_room
    {
        if let Some(seq) = state.t().ltp.oldest_parked() {
            let can = state
                .t()
                .rob
                .get(seq)
                .map(|e| state.can_force_release(e))
                .unwrap_or(false);
            if can {
                let now = state.now;
                if let Some(parked) = state.tm().ltp.force_release_oldest(now) {
                    place_released(state, bus, parked, true);
                }
            }
        }
    }
}

/// Places a released parked instruction into the IQ, allocating its
/// destination register through the "second RAT" and, when LQ/SQ allocation
/// is delayed, its memory-queue entry.
fn place_released(state: &mut PipelineState, bus: &mut StageBus, parked: ParkedInst, forced: bool) {
    let seq = parked.seq;
    let (src_phys, src_seqs, op) = {
        let infl = state
            .t()
            .inflight
            .get(&seq.0)
            .expect("released instruction must be in flight");
        (infl.src_phys.clone(), infl.src_seqs.clone(), infl.inst.op())
    };

    // Allocate the destination register through the "second RAT".
    let mut dest_phys = None;
    if let Some(dst) = state.t().rob.get(seq).and_then(|entry| entry.dst) {
        let phys = state
            .alloc_dest(dst.class())
            .expect("release resource check guarantees a register");
        dest_phys = Some(phys);
        if !state.tm().rat.resolve_parked(dst, seq, phys) {
            // A younger writer renamed the register meanwhile; its
            // commit frees this register through the parked map.
            state.tm().released_parked_regs.insert(seq.0, phys);
        }
    }

    let delay_lsq = state.cfg.delay_lsq_alloc;
    if let Some(entry) = state.tm().rob.get_mut(seq) {
        entry.dest_phys = dest_phys;
        entry.state = RobState::InQueue;
        if delay_lsq {
            if entry.op.is_load() && !entry.holds_lq {
                entry.holds_lq = true;
            }
            if entry.op.is_store() && !entry.holds_sq {
                entry.holds_sq = true;
            }
        }
    }
    if delay_lsq {
        if op.is_load() {
            state.tm().lq.allocate(seq);
        }
        if op.is_store() {
            state.tm().sq.allocate(seq, true);
        }
    }

    let wait_phys = src_phys
        .iter()
        .copied()
        .filter(|p| !state.t().completed_regs.contains(p))
        .collect();
    let wait_seqs = src_seqs
        .iter()
        .copied()
        .filter(|s| !state.is_seq_done(*s))
        .collect();
    let entry = IqEntry {
        seq,
        fu: op.fu_kind(),
        wait_phys,
        wait_seqs,
    };
    let t = state.tm();
    if forced {
        t.iq.force_dispatch(entry);
    } else {
        t.iq.dispatch(entry);
    }
    bus.releases.push(seq);
    t.activity.ltp_reads += 1;
    t.activity.iq_writes += 1;
}
