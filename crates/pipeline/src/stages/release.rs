//! LTP release stage: move parked instructions into the issue queue.
//!
//! Three release paths, in priority order (§3.2 / §5.2 / §5.4):
//!
//! 1. **In-order** (ROB proximity): parked instructions older than the
//!    Non-Urgent wakeup boundary are released in program order.
//! 2. **Out-of-order** (tickets): Urgent instructions whose tickets have all
//!    cleared leave early (appendix A; only with Non-Ready parking).
//! 3. **Forced** (deadlock avoidance): when rename stalled on resources (the
//!    [`StageBus`] force-release latch) or nothing committed for a while, the
//!    oldest parked instruction is pushed out through the reserved bypass.

use crate::iq::IqEntry;
use crate::rob::RobState;
use crate::stages::StageBus;
use crate::state::PipelineState;
use ltp_core::ParkedInst;

/// Runs the release stage for one cycle.
pub(crate) fn run(state: &mut PipelineState, bus: &mut StageBus) {
    let boundary = state.rob.nu_wake_boundary();
    let mut released_any = false;

    // In-order (ROB proximity) releases, §3.2 / §5.2.
    while let Some(seq) = state.ltp.oldest_parked() {
        if !seq.is_older_than(boundary) {
            break;
        }
        let Some(entry) = state.rob.get(seq) else {
            break;
        };
        if !state.can_place_released(entry) {
            break;
        }
        let Some(parked) = state.ltp.pop_release_in_order(boundary, state.now) else {
            break;
        };
        place_released(state, bus, parked, false);
        released_any = true;
    }

    // Out-of-order releases of Urgent instructions whose tickets cleared
    // (only meaningful when Non-Ready parking is enabled, appendix A).
    if state.ltp.config().mode.parks_non_ready() {
        loop {
            // Out-of-order releases are never the ROB head, so they must
            // always leave the last register of each class untouched.
            if !state.iq.has_space()
                || state.int_free.available() <= 1
                || state.fp_free.available() <= 1
                || (state.cfg.delay_lsq_alloc && (!state.lq.has_space() || !state.sq.has_space()))
            {
                break;
            }
            let Some(parked) = state.ltp.pop_release_ready_out_of_order(state.now) else {
                break;
            };
            place_released(state, bus, parked, false);
            released_any = true;
        }
    }

    // Deadlock avoidance (§5.4): when rename stalled for resources, or
    // nothing has committed for a while, and no ordinary release made
    // progress, force the oldest parked instruction out (through the
    // reserved bypass) so it can eventually commit and free resources.
    let force_requested = bus.take_force_release();
    let stalled_long = state.now.saturating_sub(state.last_commit_cycle) > 64;
    let bypass_has_room = state.cfg.iq_size == usize::MAX
        || state.iq.len() < state.cfg.iq_size.saturating_add(state.cfg.ltp_reserve);
    if (force_requested || stalled_long)
        && !released_any
        && state.ltp.occupancy() > 0
        && bypass_has_room
    {
        if let Some(seq) = state.ltp.oldest_parked() {
            let can = state
                .rob
                .get(seq)
                .map(|e| state.can_force_release(e))
                .unwrap_or(false);
            if can {
                if let Some(parked) = state.ltp.force_release_oldest(state.now) {
                    place_released(state, bus, parked, true);
                }
            }
        }
    }
}

/// Places a released parked instruction into the IQ, allocating its
/// destination register through the "second RAT" and, when LQ/SQ allocation
/// is delayed, its memory-queue entry.
fn place_released(state: &mut PipelineState, bus: &mut StageBus, parked: ParkedInst, forced: bool) {
    let seq = parked.seq;
    let (src_phys, src_seqs, op) = {
        let infl = state
            .inflight
            .get(&seq.0)
            .expect("released instruction must be in flight");
        (infl.src_phys.clone(), infl.src_seqs.clone(), infl.inst.op())
    };

    // Allocate the destination register through the "second RAT".
    let mut dest_phys = None;
    if let Some(entry) = state.rob.get(seq) {
        if let Some(dst) = entry.dst {
            let phys = state
                .alloc_dest(dst.class())
                .expect("release resource check guarantees a register");
            dest_phys = Some(phys);
            if !state.rat.resolve_parked(dst, seq, phys) {
                // A younger writer renamed the register meanwhile; its
                // commit frees this register through the parked map.
                state.released_parked_regs.insert(seq.0, phys);
            }
        }
    }

    let delay_lsq = state.cfg.delay_lsq_alloc;
    if let Some(entry) = state.rob.get_mut(seq) {
        entry.dest_phys = dest_phys;
        entry.state = RobState::InQueue;
        if delay_lsq {
            if entry.op.is_load() && !entry.holds_lq {
                entry.holds_lq = true;
            }
            if entry.op.is_store() && !entry.holds_sq {
                entry.holds_sq = true;
            }
        }
    }
    if delay_lsq {
        if op.is_load() {
            state.lq.allocate(seq);
        }
        if op.is_store() {
            state.sq.allocate(seq, true);
        }
    }

    let wait_phys = src_phys
        .iter()
        .copied()
        .filter(|p| !state.completed_regs.contains(p))
        .collect();
    let wait_seqs = src_seqs
        .iter()
        .copied()
        .filter(|s| !state.is_seq_done(*s))
        .collect();
    let entry = IqEntry {
        seq,
        fu: op.fu_kind(),
        wait_phys,
        wait_seqs,
    };
    if forced {
        state.iq.force_dispatch(entry);
    } else {
        state.iq.dispatch(entry);
    }
    bus.releases.push(seq);
    state.activity.ltp_reads += 1;
    state.activity.iq_writes += 1;
}
