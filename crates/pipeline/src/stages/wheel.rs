//! A timing wheel for the stage bus's delayed signals.
//!
//! The seed queued completion and long-latency signals in `BinaryHeap`s:
//! every schedule/pop was `O(log pending)` with heap churn on the hottest
//! per-cycle path. Almost all events land within a bounded horizon (the
//! worst functional-unit or DRAM latency), so a classic timing wheel fits:
//! scheduling is `O(1)` — push into the slot `cycle mod wheel-size` — and
//! advancing a cycle drains exactly one slot. A second, unbounded **far
//! level** catches the rare event beyond the horizon (e.g. a DRAM access
//! stuck behind a deep bank queue) and migrates it into the wheel as time
//! advances, so correctness never depends on the horizon chosen.
//!
//! Pop order is kept bit-identical to the seed's heaps: events due at or
//! before `now` are staged and drained in `(cycle, payload)` order. All
//! per-cycle buffers (slots, staging, scratch) retain their capacity, so the
//! steady-state loop performs no heap allocation.

use ltp_mem::Cycle;

/// A two-level timing wheel of `(cycle, payload)` events.
#[derive(Debug, Clone)]
pub struct TimingWheel {
    /// Power-of-two slot array; slot `c & mask` holds events for cycle `c`
    /// (and, transiently, for `c + k·len` until those migrate on advance).
    slots: Vec<Vec<(Cycle, u64)>>,
    mask: u64,
    /// Every event with `cycle <= drained_through` has been moved to
    /// `staging` (or already popped).
    drained_through: Cycle,
    /// Due events, sorted descending so the next event pops from the back.
    staging: Vec<(Cycle, u64)>,
    staging_sorted: bool,
    /// Events beyond the wheel horizon; `far_min` caches their earliest
    /// cycle so the per-cycle advance check is O(1).
    far: Vec<(Cycle, u64)>,
    far_min: Cycle,
    len: usize,
}

impl TimingWheel {
    /// Creates a wheel able to hold events up to `horizon` cycles ahead
    /// without touching the far level. The horizon is rounded up to a power
    /// of two; events beyond it remain correct (they take the far path).
    pub fn new(horizon: u64) -> TimingWheel {
        let size = horizon.max(2).next_power_of_two();
        // Pre-size every slot so the steady-state loop never grows one: a
        // slot holds the events of one cycle, bounded in practice by the
        // machine's issue width (events are scheduled at issue time).
        let slot_capacity = 8;
        TimingWheel {
            // (`vec![..; n]` would clone the prototype and lose its
            // capacity, so build each pre-sized slot explicitly.)
            slots: (0..size)
                .map(|_| Vec::with_capacity(slot_capacity))
                .collect(),
            mask: size - 1,
            drained_through: 0,
            staging: Vec::with_capacity(slot_capacity * 4),
            staging_sorted: true,
            far: Vec::with_capacity(32),
            far_min: Cycle::MAX,
            len: 0,
        }
    }

    /// Number of scheduled events not yet popped.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` for `cycle`. Scheduling in the past (relative to
    /// the latest `pop_due` cycle) is allowed; the event becomes due
    /// immediately, ordered by its original cycle.
    pub fn schedule(&mut self, cycle: Cycle, payload: u64) {
        self.len += 1;
        if cycle <= self.drained_through {
            self.staging.push((cycle, payload));
            self.staging_sorted = false;
        } else if cycle - self.drained_through <= self.mask {
            self.slots[(cycle & self.mask) as usize].push((cycle, payload));
        } else {
            self.far.push((cycle, payload));
            self.far_min = self.far_min.min(cycle);
        }
    }

    /// Pops the next event due at or before `now`, in `(cycle, payload)`
    /// order, or `None` when nothing is due.
    pub fn pop_due(&mut self, now: Cycle) -> Option<u64> {
        if now > self.drained_through {
            self.advance(now);
        }
        if !self.staging_sorted {
            // Descending, so the earliest (cycle, payload) pops from the back.
            self.staging.sort_unstable_by(|a, b| b.cmp(a));
            self.staging_sorted = true;
        }
        let (_, payload) = self.staging.pop()?;
        self.len -= 1;
        Some(payload)
    }

    /// Moves everything due at or before `now` into the staging buffer and
    /// migrates far events that entered the horizon into the wheel.
    fn advance(&mut self, now: Cycle) {
        if now - self.drained_through > self.mask {
            // The jump covers the whole wheel: every wheel-resident event has
            // `cycle <= drained_through + mask < now`, so one pass over the
            // slots drains them all. (The previous per-cycle loop rescanned
            // the slot array once per elapsed cycle — O(gap) instead of
            // O(size) on a large jump.)
            for slot in &mut self.slots {
                if !slot.is_empty() {
                    self.staging.append(slot);
                    self.staging_sorted = false;
                }
            }
        } else {
            for c in (self.drained_through + 1)..=now {
                let slot = &mut self.slots[(c & self.mask) as usize];
                let mut i = 0;
                while i < slot.len() {
                    if slot[i].0 <= now {
                        self.staging.push(slot.swap_remove(i));
                        self.staging_sorted = false;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        self.drained_through = now;
        if self.far_min <= now + self.mask {
            let mut min = Cycle::MAX;
            let mut i = 0;
            while i < self.far.len() {
                let (cycle, payload) = self.far[i];
                if cycle <= now + self.mask {
                    self.far.swap_remove(i);
                    if cycle <= now {
                        self.staging.push((cycle, payload));
                        self.staging_sorted = false;
                    } else {
                        self.slots[(cycle & self.mask) as usize].push((cycle, payload));
                    }
                } else {
                    min = min.min(cycle);
                    i += 1;
                }
            }
            self.far_min = min;
        }
    }
}

impl ltp_snapshot::Codec for TimingWheel {
    /// Encodes `(size, drained_through, events)` with the pending events
    /// sorted ascending. Pop order only depends on `(cycle, payload)` order —
    /// staging is re-sorted before every pop and wheel slots drain through
    /// that same sort — so the sorted form is canonical *and* behaviourally
    /// exact.
    fn write(&self, w: &mut ltp_snapshot::Writer) {
        (self.mask + 1).write(w);
        self.drained_through.write(w);
        let mut events: Vec<(Cycle, u64)> = Vec::with_capacity(self.len);
        events.extend(self.staging.iter().copied());
        for slot in &self.slots {
            events.extend(slot.iter().copied());
        }
        events.extend(self.far.iter().copied());
        events.sort_unstable();
        events.write(w);
    }
    fn read(r: &mut ltp_snapshot::Reader<'_>) -> Result<Self, ltp_snapshot::SnapError> {
        let size = u64::read(r)?;
        if !size.is_power_of_two() {
            return Err(ltp_snapshot::SnapError::Invalid("timing wheel size"));
        }
        let drained_through = Cycle::read(r)?;
        let events = Vec::<(Cycle, u64)>::read(r)?;
        let mut wheel = TimingWheel::new(size);
        wheel.drained_through = drained_through;
        for (cycle, payload) in events {
            wheel.schedule(cycle, payload);
        }
        Ok(wheel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_then_payload_order() {
        let mut w = TimingWheel::new(16);
        w.schedule(10, 2);
        w.schedule(5, 1);
        w.schedule(5, 0);
        assert_eq!(w.pop_due(4), None);
        assert_eq!(w.pop_due(5), Some(0));
        assert_eq!(w.pop_due(5), Some(1));
        assert_eq!(w.pop_due(5), None);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_due(10), Some(2));
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn far_events_survive_the_horizon() {
        let mut w = TimingWheel::new(4);
        w.schedule(3, 1);
        w.schedule(1000, 2);
        w.schedule(40, 3);
        assert_eq!(w.pop_due(3), Some(1));
        assert_eq!(w.pop_due(3), None);
        // Advance in small steps across several wheel wraps.
        let mut popped = Vec::new();
        for now in 4..=1000 {
            while let Some(p) = w.pop_due(now) {
                popped.push((now, p));
            }
        }
        assert_eq!(popped, vec![(40, 3), (1000, 2)]);
    }

    #[test]
    fn scheduling_in_the_past_pops_before_current_events() {
        let mut w = TimingWheel::new(8);
        w.schedule(6, 9);
        assert_eq!(w.pop_due(5), None);
        // Issued "last cycle" with zero latency: due immediately, and older
        // than the cycle-6 event.
        w.schedule(5, 7);
        assert_eq!(w.pop_due(6), Some(7));
        assert_eq!(w.pop_due(6), Some(9));
    }

    #[test]
    fn wrap_around_does_not_mix_cycles() {
        let mut w = TimingWheel::new(4);
        // Two events in the same slot (cycles 2 and 6 with a 4-slot wheel).
        w.schedule(2, 20);
        w.schedule(6, 60);
        assert_eq!(w.pop_due(2), Some(20));
        assert_eq!(w.pop_due(2), None);
        assert_eq!(w.pop_due(6), Some(60));
    }

    /// A jump of ~1M cycles must drain in one pass over the slots (the bug
    /// was an O(gap) rescan), preserving pop order and the length counter —
    /// including events parked in the far level and events scheduled after
    /// the jump.
    #[test]
    fn million_cycle_jump_preserves_order_and_len() {
        let mut w = TimingWheel::new(8);
        // In-wheel events, a far event beyond the horizon, and duplicates.
        for (c, p) in [(3u64, 30u64), (7, 70), (7, 71), (500, 5000), (9, 90)] {
            w.schedule(c, p);
        }
        assert_eq!(w.len(), 5);
        let jump = 1_000_000;
        let mut out = Vec::new();
        while let Some(p) = w.pop_due(jump) {
            out.push(p);
        }
        assert_eq!(out, vec![30, 70, 71, 90, 5000]);
        assert_eq!(w.len(), 0);
        // The wheel keeps working after the jump, including another jump.
        w.schedule(jump + 2, 1);
        w.schedule(jump + 5, 2);
        w.schedule(jump + 3_000_000, 3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop_due(jump + 1), None);
        assert_eq!(w.pop_due(jump + 2), Some(1));
        assert_eq!(w.pop_due(jump + 3_000_000), Some(2));
        assert_eq!(w.pop_due(jump + 3_000_000), Some(3));
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn large_jumps_drain_everything_in_order() {
        let mut w = TimingWheel::new(8);
        for c in [12u64, 3, 40, 3, 7] {
            w.schedule(c, c * 10 + 1);
        }
        let mut out = Vec::new();
        while let Some(p) = w.pop_due(1_000) {
            out.push(p);
        }
        assert_eq!(out, vec![31, 31, 71, 121, 401]);
        assert_eq!(w.len(), 0);
    }
}
