//! Commit stage: retire completed instructions in program order.
//!
//! Frees the previous register mapping of each committed instruction (the
//! "second RAT" bookkeeping for released parked writers included), releases
//! LQ/SQ entries, performs the store write as the store drains, and records
//! every commit slot and freed register on the [`StageBus`].

use crate::rat::RegSource;
use crate::stages::{CommitSlot, StageBus};
use crate::state::PipelineState;
use ltp_isa::RegClass;
use ltp_mem::{AccessKind, MemoryRequest};

/// Runs the commit stage for one cycle (up to `commit_width` instructions).
pub(crate) fn run(state: &mut PipelineState, bus: &mut StageBus) {
    for _ in 0..state.cfg.commit_width {
        let Some(entry) = state.rob.try_commit() else {
            break;
        };
        state.committed += 1;
        state.last_commit_cycle = state.now;

        match entry.prev_mapping {
            RegSource::Ready => {
                // First rename of this architectural register: the
                // physical register that held its initial value is
                // recycled into the available pool (footnote 4 of the
                // paper counts "available" registers beyond the
                // architectural state).
                if let Some(dst) = entry.dst {
                    match dst.class() {
                        RegClass::Int => state.int_free.add_capacity(1),
                        RegClass::Fp => state.fp_free.add_capacity(1),
                    }
                }
            }
            RegSource::Phys(p) => {
                state.free_dest(p);
                bus.reg_frees.push(p);
            }
            RegSource::Parked(s) => {
                if let Some(p) = state.released_parked_regs.remove(&s.0) {
                    state.free_dest(p);
                    bus.reg_frees.push(p);
                }
            }
        }

        if entry.holds_lq {
            state.lq.release(entry.seq);
        }
        if entry.holds_sq {
            // The store performs its write as it drains from the SQ.
            if let Some(infl) = state.inflight.get(&entry.seq.0) {
                if let Some(access) = infl.inst.mem_access() {
                    let req = MemoryRequest::new(entry.pc, access.addr(), AccessKind::Store);
                    let _ = state.mem.access(state.now, &req);
                }
            }
            state.sq.release(entry.seq);
        }

        if entry.op.is_load() {
            state.loads_committed += 1;
            if entry.long_latency {
                state.llc_miss_loads += 1;
            }
        }
        if entry.op.is_store() {
            state.stores_committed += 1;
        }
        bus.commits.push(CommitSlot {
            seq: entry.seq,
            op: entry.op,
            was_parked: entry.was_parked,
        });
        state.inflight.remove(&entry.seq.0);
    }
}
