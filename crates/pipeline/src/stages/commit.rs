//! Commit stage: retire completed instructions in program order.
//!
//! Frees the previous register mapping of each committed instruction (the
//! "second RAT" bookkeeping for released parked writers included), releases
//! LQ/SQ entries, performs the store write as the store drains, and records
//! every commit slot and freed register on the [`StageBus`]. Under SMT the
//! commit width is shared: each thread receives the budget its co-runners
//! left over this cycle, and commit order is per-thread program order.

use crate::rat::RegSource;
use crate::stages::{CommitSlot, StageBus};
use crate::state::PipelineState;
use ltp_mem::{AccessKind, MemoryRequest};

/// Runs the commit stage of the active thread for one cycle, retiring at
/// most `budget` instructions. Returns how many committed.
pub(crate) fn run(state: &mut PipelineState, bus: &mut StageBus, budget: usize) -> usize {
    let mut committed = 0;
    for _ in 0..budget {
        let Some(entry) = state.tm().rob.try_commit() else {
            break;
        };
        committed += 1;
        let now = state.now;
        let t = state.tm();
        t.committed += 1;
        t.last_commit_cycle = now;

        match entry.prev_mapping {
            RegSource::Ready => {
                // First rename of this architectural register: the
                // physical register that held its initial value is
                // recycled into the available pool (footnote 4 of the
                // paper counts "available" registers beyond the
                // architectural state).
                if let Some(dst) = entry.dst {
                    state.recycle_arch_reg(dst.class());
                }
            }
            RegSource::Phys(p) => {
                state.free_dest(p);
                bus.reg_frees.push(p);
            }
            RegSource::Parked(s) => {
                if let Some(p) = state.tm().released_parked_regs.remove(&s.0) {
                    state.free_dest(p);
                    bus.reg_frees.push(p);
                }
            }
        }

        if entry.holds_lq {
            state.tm().lq.release(entry.seq);
        }
        if entry.holds_sq {
            // The store performs its write as it drains from the SQ.
            if let Some(access) = state
                .t()
                .inflight
                .get(&entry.seq.0)
                .and_then(|infl| infl.inst.mem_access())
            {
                let req = MemoryRequest::new(entry.pc, access.addr(), AccessKind::Store);
                let now = state.now;
                let _ = state.mem.access(now, &req);
            }
            state.tm().sq.release(entry.seq);
        }

        let t = state.tm();
        if entry.op.is_load() {
            t.loads_committed += 1;
            if entry.long_latency {
                t.llc_miss_loads += 1;
            }
        }
        if entry.op.is_store() {
            t.stores_committed += 1;
        }
        bus.commits.push(CommitSlot {
            seq: entry.seq,
            op: entry.op,
            was_parked: entry.was_parked,
        });
        t.inflight.remove(&entry.seq.0);
    }
    committed
}
