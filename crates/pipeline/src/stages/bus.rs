//! The typed per-cycle signal bus connecting the pipeline stages.
//!
//! Stages never call each other; everything one stage tells another travels
//! over the [`StageBus`] as a *latched signal*:
//!
//! * **Delayed signals** — the issue stage schedules completion events and
//!   early long-latency signals for a future cycle; the writeback stage pops
//!   the ones that are due. These model wires with a programmable delay.
//! * **Cross-cycle latches** — the rename stage raises
//!   [`StageBus::request_force_release`] when it stalls on resources; the
//!   release stage consumes the latched value on the *next* cycle
//!   (deadlock avoidance, §5.4 of the paper).
//! * **Per-cycle records** — wakeups, register frees, ticket clears, commit
//!   slots and LTP releases produced this cycle. They are cleared by
//!   [`StageBus::begin_cycle`] and are observable from outside the processor
//!   (see [`crate::Processor::run_observed`]), which is what the invariant
//!   test-suite hooks into.

use crate::stages::wheel::TimingWheel;
use ltp_isa::{OpClass, PhysReg, SeqNum};
use ltp_mem::Cycle;

/// One instruction leaving the machine through the commit stage this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitSlot {
    /// Sequence number of the committed instruction.
    pub seq: SeqNum,
    /// Its operation class.
    pub op: OpClass,
    /// Whether it had been parked in the LTP at rename.
    pub was_parked: bool,
}

/// Default timing-wheel horizon when the bus is built without a machine
/// configuration (covers every fixed FU latency and a typical DRAM access).
const DEFAULT_HORIZON: u64 = 1024;

/// Typed per-cycle latched signals exchanged between the pipeline stages.
#[derive(Debug, Clone)]
pub struct StageBus {
    /// Issue → writeback: `(cycle, seq)` completion events, kept in a timing
    /// wheel and popped when due.
    completions: TimingWheel,
    /// Issue → writeback: early completion signals of long-latency
    /// instructions (tag hit / divide countdown), used to clear tickets a few
    /// cycles before the result arrives (§3.2).
    ll_signals: TimingWheel,
    /// Rename (cycle N) → release (cycle N+1): rename stalled for resources
    /// while instructions were parked, so the release stage should consider a
    /// forced release. Latched across the cycle boundary.
    force_release: bool,
    /// Writeback → issue: physical registers whose values became available
    /// this cycle (the wakeup broadcast).
    pub reg_wakeups: Vec<PhysReg>,
    /// Writeback → issue: completed sequence numbers (wakeups for consumers
    /// that wait on a parked producer by sequence number).
    pub seq_wakeups: Vec<SeqNum>,
    /// Writeback/release: long-latency producers whose ticket cleared this
    /// cycle through the early-signal path.
    pub ticket_clears: Vec<SeqNum>,
    /// Commit: instructions that left the machine this cycle, in commit
    /// (program) order.
    pub commits: Vec<CommitSlot>,
    /// Commit: physical registers returned to the free lists this cycle.
    pub reg_frees: Vec<PhysReg>,
    /// Release: parked instructions placed into the IQ this cycle.
    pub releases: Vec<SeqNum>,
}

impl Default for StageBus {
    fn default() -> StageBus {
        StageBus::with_horizon(DEFAULT_HORIZON)
    }
}

impl StageBus {
    /// Creates an empty bus with the default delayed-signal horizon.
    #[must_use]
    pub fn new() -> StageBus {
        StageBus::default()
    }

    /// Creates an empty bus whose timing wheels are sized for delays up to
    /// `horizon` cycles (the worst functional-unit or DRAM latency of the
    /// machine); longer delays remain correct through the wheels' far level.
    #[must_use]
    pub fn with_horizon(horizon: u64) -> StageBus {
        StageBus {
            completions: TimingWheel::new(horizon),
            ll_signals: TimingWheel::new(horizon),
            force_release: false,
            reg_wakeups: Vec::new(),
            seq_wakeups: Vec::new(),
            ticket_clears: Vec::new(),
            commits: Vec::new(),
            reg_frees: Vec::new(),
            releases: Vec::new(),
        }
    }

    /// Clears the per-cycle records. Delayed signals and cross-cycle latches
    /// survive; they are consumed by the stage they target.
    pub(crate) fn begin_cycle(&mut self) {
        self.reg_wakeups.clear();
        self.seq_wakeups.clear();
        self.ticket_clears.clear();
        self.commits.clear();
        self.reg_frees.clear();
        self.releases.clear();
    }

    /// Schedules the completion of `seq` at `cycle`.
    pub(crate) fn schedule_completion(&mut self, cycle: Cycle, seq: SeqNum) {
        self.completions.schedule(cycle, seq.0);
    }

    /// Schedules the early long-latency signal of `seq` at `cycle`.
    pub(crate) fn schedule_ll_signal(&mut self, cycle: Cycle, seq: SeqNum) {
        self.ll_signals.schedule(cycle, seq.0);
    }

    /// Pops the next completion that is due at or before `now`.
    pub(crate) fn pop_due_completion(&mut self, now: Cycle) -> Option<SeqNum> {
        self.completions.pop_due(now).map(SeqNum)
    }

    /// Pops the next early long-latency signal due at or before `now`.
    pub(crate) fn pop_due_ll_signal(&mut self, now: Cycle) -> Option<SeqNum> {
        self.ll_signals.pop_due(now).map(SeqNum)
    }

    /// Raises the force-release latch (rename stalled on resources while the
    /// LTP holds instructions); the release stage sees it next cycle.
    pub(crate) fn request_force_release(&mut self) {
        self.force_release = true;
    }

    /// Consumes the force-release latch.
    pub(crate) fn take_force_release(&mut self) -> bool {
        std::mem::take(&mut self.force_release)
    }

    /// Whether the force-release latch is currently raised.
    #[must_use]
    pub fn force_release_pending(&self) -> bool {
        self.force_release
    }

    /// Number of completion events still in flight (scheduled but not yet
    /// consumed by writeback).
    #[must_use]
    pub fn pending_completions(&self) -> usize {
        self.completions.len()
    }
}

impl ltp_snapshot::Codec for StageBus {
    /// Only cross-cycle state travels: the delayed-signal wheels and the
    /// force-release latch. The per-cycle record vectors are cleared by
    /// `begin_cycle` before any stage reads them, so a snapshot taken on a
    /// cycle boundary restores them empty.
    fn write(&self, w: &mut ltp_snapshot::Writer) {
        self.completions.write(w);
        self.ll_signals.write(w);
        self.force_release.write(w);
    }
    fn read(r: &mut ltp_snapshot::Reader<'_>) -> Result<Self, ltp_snapshot::SnapError> {
        Ok(StageBus {
            completions: TimingWheel::read(r)?,
            ll_signals: TimingWheel::read(r)?,
            force_release: bool::read(r)?,
            reg_wakeups: Vec::new(),
            seq_wakeups: Vec::new(),
            ticket_clears: Vec::new(),
            commits: Vec::new(),
            reg_frees: Vec::new(),
            releases: Vec::new(),
        })
    }
}

#[cfg(test)]
mod horizon_tests {
    use super::*;

    /// A delay far beyond the wheel horizon must still deliver, in order.
    #[test]
    fn beyond_horizon_completions_deliver() {
        let mut bus = StageBus::with_horizon(8);
        bus.schedule_completion(5_000, SeqNum(1));
        bus.schedule_completion(3, SeqNum(0));
        assert_eq!(bus.pop_due_completion(3), Some(SeqNum(0)));
        assert_eq!(bus.pop_due_completion(4_999), None);
        assert_eq!(bus.pop_due_completion(5_000), Some(SeqNum(1)));
        assert_eq!(bus.pending_completions(), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delayed_signals_pop_in_time_order() {
        let mut bus = StageBus::new();
        bus.schedule_completion(10, SeqNum(2));
        bus.schedule_completion(5, SeqNum(1));
        bus.schedule_completion(5, SeqNum(0));
        assert_eq!(bus.pop_due_completion(4), None);
        assert_eq!(bus.pop_due_completion(5), Some(SeqNum(0)));
        assert_eq!(bus.pop_due_completion(5), Some(SeqNum(1)));
        assert_eq!(bus.pop_due_completion(5), None);
        assert_eq!(bus.pending_completions(), 1);
        assert_eq!(bus.pop_due_completion(10), Some(SeqNum(2)));
    }

    #[test]
    fn force_release_latch_is_consumed_once() {
        let mut bus = StageBus::new();
        assert!(!bus.take_force_release());
        bus.request_force_release();
        assert!(bus.force_release_pending());
        assert!(bus.take_force_release());
        assert!(!bus.take_force_release());
    }

    #[test]
    fn begin_cycle_clears_records_but_not_latches() {
        let mut bus = StageBus::new();
        bus.reg_wakeups.push(PhysReg::new(3));
        bus.commits.push(CommitSlot {
            seq: SeqNum(0),
            op: OpClass::IntAlu,
            was_parked: false,
        });
        bus.request_force_release();
        bus.schedule_ll_signal(9, SeqNum(4));
        bus.begin_cycle();
        assert!(bus.reg_wakeups.is_empty() && bus.commits.is_empty());
        assert!(bus.force_release_pending());
        assert_eq!(bus.pop_due_ll_signal(9), Some(SeqNum(4)));
    }
}
