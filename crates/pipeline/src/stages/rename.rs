//! Rename/dispatch stage: classify, park or dispatch.
//!
//! Pulls decoded instructions from the front end, resolves their sources
//! against the RAT, presents each one to the LTP unit for criticality
//! classification (§5.1), and either parks it (ROB entry only) or dispatches
//! it to the IQ with a destination register and LQ/SQ entry. When dispatch
//! stalls on resources while the LTP holds instructions, the stage raises the
//! force-release latch on the [`StageBus`] so the release stage can apply the
//! §5.4 deadlock-avoidance path next cycle.
//!
//! The retry slot for a classified-but-unplaceable instruction
//! ([`RenameStage::pending`]) is stage-local state, mirroring the skid
//! buffer a real rename stage would keep. Under SMT one `RenameStage`
//! instance exists per hardware thread, and the threads share the front-end
//! width: the budget handed to [`RenameStage::run`] is what the co-runner
//! left over.

use crate::frontend::FrontEnd;
use crate::iq::IqEntry;
use crate::rat::RegSource;
use crate::rob::{RobEntry, RobState};
use crate::stages::StageBus;
use crate::state::{InFlight, PipelineState};
use inlinevec::InlineVec;
use ltp_core::RenamedInst;
use ltp_isa::{DynInst, InstStream, PhysReg, RegClass, SeqNum};

/// A dispatch that passed classification but could not be placed yet because
/// the IQ, register file or LQ/SQ was full; retried the next cycle.
#[derive(Debug, Clone)]
pub(crate) struct PendingDispatch {
    pub(crate) inst: DynInst,
    pub(crate) src_phys: InlineVec<PhysReg, 4>,
    pub(crate) src_seqs: InlineVec<SeqNum, 2>,
    pub(crate) long_latency_hint: bool,
}

/// The rename stage and its skid buffer (one per hardware thread).
#[derive(Debug, Default, Clone)]
pub(crate) struct RenameStage {
    pub(crate) pending: Option<PendingDispatch>,
}

impl RenameStage {
    /// Runs the rename stage of the active thread for one cycle, renaming at
    /// most `budget` instructions (the front-end width share left for this
    /// thread). Returns how many instructions were renamed.
    pub(crate) fn run<S: InstStream>(
        &mut self,
        state: &mut PipelineState,
        bus: &mut StageBus,
        fe: &mut FrontEnd<S>,
        budget: usize,
    ) -> usize {
        let mut renamed = 0;

        // First, retry a dispatch that was classified earlier but could not
        // be placed for lack of resources.
        if let Some(pending) = self.pending.take() {
            if try_place_dispatch(
                state,
                &pending.inst,
                pending.src_phys.clone(),
                pending.src_seqs.clone(),
                pending.long_latency_hint,
            ) {
                renamed += 1;
            } else {
                if state.t().ltp.occupancy() > 0 {
                    bus.request_force_release();
                }
                self.pending = Some(pending);
                return renamed;
            }
        }

        while renamed < budget {
            if !state.rob_has_space() {
                break;
            }
            let Some(peek) = fe.peek_ready(state.now) else {
                break;
            };
            let op = peek.op();

            // Resources every instruction needs regardless of parking: a ROB
            // entry (checked) and, unless LQ/SQ allocation is delayed, an
            // LQ/SQ entry for memory operations.
            if !state.cfg.delay_lsq_alloc {
                if op.is_load() && !state.lq_has_space() {
                    break;
                }
                if op.is_store() && !state.sq_has_space() {
                    break;
                }
            }

            let inst = fe.pop_ready(state.now).expect("peeked instruction exists");
            debug_assert_eq!(
                inst.tid(),
                state.t().tid,
                "instruction fetched into the wrong thread context"
            );
            let (src_phys, src_seqs) = state.resolve_sources(&inst);

            let mem_dep_parked =
                op.is_load() && state.tm().memdep.predicts_parked_dependence(inst.pc());
            let rinst = RenamedInst::from_dyn(&inst).with_mem_dep_parked(mem_dep_parked);
            let now = state.now;
            let decision = state.tm().ltp.at_rename(&rinst, now);

            state.tm().inflight.insert(
                inst.seq().0,
                InFlight {
                    inst,
                    src_phys: src_phys.clone(),
                    src_seqs: src_seqs.clone(),
                },
            );

            if decision.parked() {
                park_instruction(state, &inst, decision.long_latency_hint);
                state.tm().activity.ltp_writes += 1;
                renamed += 1;
            } else if try_place_dispatch(
                state,
                &inst,
                src_phys.clone(),
                src_seqs.clone(),
                decision.long_latency_hint,
            ) {
                renamed += 1;
            } else {
                // Could not place: remember it and stall rename.
                if state.t().ltp.occupancy() > 0 {
                    bus.request_force_release();
                }
                self.pending = Some(PendingDispatch {
                    inst,
                    src_phys,
                    src_seqs,
                    long_latency_hint: decision.long_latency_hint,
                });
                break;
            }
        }
        renamed
    }
}

/// Allocates the ROB (and, unless delayed, LQ/SQ) entry for a parked
/// instruction and records it in the RAT as a parked producer.
fn park_instruction(state: &mut PipelineState, inst: &DynInst, long_latency_hint: bool) {
    let seq = inst.seq();
    let op = inst.op();
    let dst = inst.static_inst().dst().filter(|d| !d.is_zero());

    let prev_mapping = match dst {
        Some(d) => state.tm().rat.set_parked(d, seq),
        None => RegSource::Ready,
    };

    let mut holds_lq = false;
    let mut holds_sq = false;
    if !state.cfg.delay_lsq_alloc {
        if op.is_load() {
            state.tm().lq.allocate(seq);
            holds_lq = true;
        }
        if op.is_store() {
            state.tm().sq.allocate(seq, true);
            holds_sq = true;
        }
    }

    state.tm().rob.push(RobEntry {
        seq,
        pc: inst.pc(),
        op,
        state: RobState::Parked,
        dst,
        dest_phys: None,
        prev_mapping,
        long_latency: long_latency_hint,
        holds_lq,
        holds_sq,
        was_parked: true,
        completion_cycle: 0,
    });
}

/// Attempts to dispatch an instruction to the IQ, allocating its
/// destination register and LQ/SQ entry. Returns `false` when a resource
/// is unavailable (rename must stall).
fn try_place_dispatch(
    state: &mut PipelineState,
    inst: &DynInst,
    src_phys: InlineVec<PhysReg, 4>,
    src_seqs: InlineVec<SeqNum, 2>,
    long_latency_hint: bool,
) -> bool {
    let op = inst.op();
    let seq = inst.seq();
    let dst = inst.static_inst().dst().filter(|d| !d.is_zero());

    if !state.iq_has_space() {
        return false;
    }
    // Reserve a few entries of commit-freed resources for instructions
    // leaving the LTP (§5.4). The reserve is clamped so that very small
    // structures (e.g. an 8-entry LQ in the limit study) keep a usable
    // share for ordinary dispatch.
    let base_reserve = if state.cfg.ltp.mode.is_enabled() {
        state.cfg.ltp_reserve
    } else {
        0
    };
    if let Some(d) = dst {
        let regs = match d.class() {
            RegClass::Int => state.cfg.int_regs,
            RegClass::Fp => state.cfg.fp_regs,
        };
        let reserve = base_reserve.min(regs / 4);
        if !state.can_alloc_beyond_reserve(d.class(), reserve) {
            return false;
        }
    }
    if state.cfg.delay_lsq_alloc {
        if op.is_load()
            && !state.lq_has_space_beyond_reserve(base_reserve.min(state.cfg.lq_size / 4))
        {
            return false;
        }
        if op.is_store()
            && !state.sq_has_space_beyond_reserve(base_reserve.min(state.cfg.sq_size / 4))
        {
            return false;
        }
    }

    // All resources available: allocate.
    let mut dest_phys = None;
    let prev_mapping = match dst {
        Some(d) => {
            let phys = state
                .alloc_dest(d.class())
                .expect("availability checked above");
            dest_phys = Some(phys);
            state.tm().rat.set_phys(d, phys)
        }
        None => RegSource::Ready,
    };

    let mut holds_lq = false;
    let mut holds_sq = false;
    if op.is_load() {
        state.tm().lq.allocate(seq);
        holds_lq = true;
    }
    if op.is_store() {
        state.tm().sq.allocate(seq, false);
        holds_sq = true;
    }

    state.tm().rob.push(RobEntry {
        seq,
        pc: inst.pc(),
        op,
        state: RobState::InQueue,
        dst,
        dest_phys,
        prev_mapping,
        long_latency: long_latency_hint,
        holds_lq,
        holds_sq,
        was_parked: false,
        completion_cycle: 0,
    });

    let wait_phys = src_phys
        .iter()
        .copied()
        .filter(|p| !state.t().completed_regs.contains(p))
        .collect();
    let wait_seqs = src_seqs
        .iter()
        .copied()
        .filter(|s| !state.is_seq_done(*s))
        .collect();
    state.tm().iq.dispatch(IqEntry {
        seq,
        fu: op.fu_kind(),
        wait_phys,
        wait_seqs,
    });
    state.tm().activity.iq_writes += 1;
    true
}
