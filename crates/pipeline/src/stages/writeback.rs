//! Writeback stage: retire completion events into architectural visibility.
//!
//! Consumes the delayed completion and early long-latency signals the issue
//! stage scheduled on the [`StageBus`], marks the ROB entries completed,
//! publishes the wakeup broadcast (physical-register and sequence-number
//! wakeups) on the bus and applies it to the issue queue, and clears LTP
//! tickets so Non-Ready descendants can be released in time (§3.2). Under
//! SMT each thread has its own bus and runs this stage on its own ROB/IQ;
//! physical registers are allocated from the shared pool but always by a
//! single thread, so the per-thread wakeup broadcast reaches every consumer.

use crate::stages::StageBus;
use crate::state::PipelineState;

/// Runs the writeback stage of the active thread for one cycle.
pub(crate) fn run(state: &mut PipelineState, bus: &mut StageBus) {
    let now = state.now;
    // Instruction completions.
    while let Some(seq) = bus.pop_due_completion(now) {
        let t = state.tm();
        if let Some(entry) = t.rob.complete(seq) {
            if let Some(p) = entry.dest_phys {
                t.completed_regs.insert(p);
                bus.reg_wakeups.push(p);
                t.activity.rf_writes += 1;
            }
        }
        bus.seq_wakeups.push(seq);
        // Safety net for ticket clearing: whatever the early-signal path
        // did, a completed instruction's ticket must be cleared so its
        // Non-Ready descendants can leave the LTP (a load predicted to
        // miss may actually have hit and never produced an early signal).
        let _ = t.ltp.on_long_latency_completing(seq, now);
    }
    // Early completion signals of long-latency instructions (tag hit /
    // divide countdown): clear their tickets so Non-Ready instructions
    // can be released in time (§3.2).
    while let Some(seq) = bus.pop_due_ll_signal(now) {
        bus.ticket_clears.push(seq);
        let _ = state.tm().ltp.on_long_latency_completing(seq, now);
    }
    // Apply the wakeup broadcast to the issue queue. The issue stage runs
    // later in the cycle, so consumers woken here can be selected this cycle,
    // exactly as when the wakeups were applied inline per completion.
    let t = state.tm();
    for &p in &bus.reg_wakeups {
        t.iq.wake_phys(p);
    }
    for &s in &bus.seq_wakeups {
        t.iq.wake_seq(s);
    }
}
