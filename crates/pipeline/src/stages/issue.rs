//! Issue stage: wakeup/select from the issue queue and execute.
//!
//! Selects ready instructions whose functional unit is available, models
//! execution (cache access for loads, fixed latencies for arithmetic) and
//! schedules the resulting completion and early long-latency signals on the
//! [`StageBus`] for the writeback stage. Under SMT the issue width is shared:
//! each thread receives the budget its co-runners left over this cycle, and
//! the functional units are a single shared pool.

use crate::stages::StageBus;
use crate::state::PipelineState;
use ltp_isa::{DynInst, OpClass};
use ltp_mem::{AccessKind, Cycle, MemoryRequest};

/// Runs the issue stage of the active thread for one cycle, selecting at
/// most `budget` instructions. Returns how many were issued.
pub(crate) fn run(state: &mut PipelineState, bus: &mut StageBus, budget: usize) -> usize {
    let now = state.now;
    // The selection scratch lives in the machine state so the hot loop never
    // allocates; `select_into` appends in selection order.
    let mut picked = std::mem::take(&mut state.issue_scratch);
    debug_assert!(picked.is_empty());
    {
        let (iq, fu) = state.iq_and_fu();
        iq.select_into(
            budget,
            |kind| {
                // Reserve the unit immediately; unpipelined units use their
                // worst-case occupancy.
                let latency = match kind {
                    ltp_isa::FuKind::IntMulDiv => OpClass::IntDiv.exec_latency().cycles(),
                    ltp_isa::FuKind::FpDivSqrt => OpClass::FpSqrt.exec_latency().cycles(),
                    _ => 1,
                };
                fu.acquire(kind, now, latency)
            },
            &mut picked,
        );
    }
    let issued = picked.len();

    for entry in picked.drain(..) {
        let seq = entry.seq;
        state.tm().activity.iq_issues += 1;
        let (inst, n_srcs) = {
            let infl = state
                .t()
                .inflight
                .get(&seq.0)
                .expect("issued instruction must be in flight");
            (infl.inst, infl.inst.static_inst().dataflow_srcs().count())
        };
        state.tm().activity.rf_reads += n_srcs as u64;

        let op = inst.op();
        let (completion, long_latency, ll_signal) = if op.is_load() {
            execute_load(state, &inst)
        } else if op.is_store() {
            let done = state.now + 1;
            if let Some(access) = inst.mem_access() {
                state
                    .tm()
                    .sq
                    .set_address(seq, ltp_mem::line_of(access.addr()), done);
            }
            (done, false, None)
        } else {
            let latency = op.exec_latency().cycles();
            let done = state.now + latency;
            if op.is_long_latency_arith() {
                // The divide/sqrt latency is approximately known, so the
                // wakeup signal is sent a few cycles before completion.
                (done, true, Some(done.saturating_sub(3)))
            } else {
                (done, false, None)
            }
        };

        state.tm().rob.mark_issued(seq, completion, long_latency);
        bus.schedule_completion(completion, seq);
        if let Some(signal) = ll_signal {
            bus.schedule_ll_signal(signal.max(state.now), seq);
        }
    }
    state.issue_scratch = picked;
    issued
}

/// Executes a load: address generation, store forwarding check, cache
/// access. Returns `(completion cycle, is long latency, early signal)`.
fn execute_load(state: &mut PipelineState, inst: &DynInst) -> (Cycle, bool, Option<Cycle>) {
    let agen_done = state.now + 1;
    let Some(access) = inst.mem_access() else {
        return (agen_done, false, None);
    };
    let line = ltp_mem::line_of(access.addr());

    // Store-to-load forwarding from an older store of the same thread to the
    // same line (the LQ/SQ are per thread, so forwarding never crosses
    // threads).
    if let Some((data_ready, store_was_parked)) = state.t().sq.forward_for(inst.seq(), line) {
        if store_was_parked {
            // Remember this load for the §5.3 memory-dependence rule.
            state.tm().memdep.train(inst.pc());
        }
        let done = data_ready.max(agen_done) + 1;
        let now = state.now;
        state.tm().ltp.on_load_outcome(inst.pc(), false, now);
        return (done, false, None);
    }

    let req = MemoryRequest::new(inst.pc(), access.addr(), AccessKind::Load);
    let result = state.mem.access(agen_done, &req);
    let long_latency = result.latency() > state.cfg.mem.l3.latency;
    let now = state.now;
    state
        .tm()
        .ltp
        .on_load_outcome(inst.pc(), result.is_llc_miss(), now);
    let signal = if long_latency {
        Some(result.tag_known_cycle)
    } else {
        None
    };
    (result.completion_cycle, long_latency, signal)
}
