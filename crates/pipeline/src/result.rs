//! Results of a simulation run, and the structured errors a run can end in.

use crate::rob::RobState;
use ltp_core::{LtpMode, LtpStats};
use ltp_isa::{OpClass, SeqNum};
use ltp_mem::{Cycle, MemoryStats};
use ltp_stats::OccupancyTracker;

/// Time-weighted occupancy of every sized structure, for the
//  "Avg. Resources in use per cycle" plots (Figure 1c, Figure 7).
#[derive(Debug, Clone, Default)]
pub struct OccupancyReport {
    /// Instruction queue occupancy.
    pub iq: OccupancyTracker,
    /// Reorder buffer occupancy.
    pub rob: OccupancyTracker,
    /// Load queue occupancy.
    pub lq: OccupancyTracker,
    /// Store queue occupancy.
    pub sq: OccupancyTracker,
    /// Physical registers in use (both classes, beyond the architectural
    /// mappings).
    pub regs: OccupancyTracker,
    /// Instructions parked in LTP.
    pub ltp: OccupancyTracker,
    /// Registers "in LTP": parked instructions that will need a destination
    /// register when released (Figure 7, second row).
    pub ltp_regs: OccupancyTracker,
    /// Loads parked in LTP.
    pub ltp_loads: OccupancyTracker,
    /// Stores parked in LTP.
    pub ltp_stores: OccupancyTracker,
    /// Outstanding memory requests beyond the L1 (Figure 1b).
    pub outstanding_misses: OccupancyTracker,
}

/// Activity counters needed by the energy model (`ltp-energy`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ActivityCounters {
    /// Instructions written into the IQ.
    pub iq_writes: u64,
    /// Instructions issued from the IQ.
    pub iq_issues: u64,
    /// Register-file read-port accesses (source operands of issued
    /// instructions).
    pub rf_reads: u64,
    /// Register-file write-port accesses (results written back).
    pub rf_writes: u64,
    /// Instructions parked into LTP.
    pub ltp_writes: u64,
    /// Instructions released from LTP.
    pub ltp_reads: u64,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Name of the workload that was run.
    pub workload: String,
    /// Simulated cycles (after pipeline warm-up).
    pub cycles: u64,
    /// Committed instructions (after pipeline warm-up).
    pub instructions: u64,
    /// Occupancy of every structure.
    pub occupancy: OccupancyReport,
    /// Energy-relevant activity counters.
    pub activity: ActivityCounters,
    /// LTP counters (parked / released / per class).
    pub ltp: LtpStats,
    /// Fraction of time the LTP was enabled (Figure 7, bottom).
    pub ltp_enabled_fraction: f64,
    /// Memory hierarchy statistics.
    pub mem: MemoryStats,
    /// Branch misprediction rate.
    pub branch_mispredict_rate: f64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Loads that missed the LLC (long-latency loads).
    pub llc_miss_loads: u64,
}

impl RunResult {
    /// Cycles per committed instruction.
    ///
    /// # Panics
    ///
    /// Panics if no instructions were committed.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        assert!(self.instructions > 0, "no instructions were committed");
        self.cycles as f64 / self.instructions as f64
    }

    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        1.0 / self.cpi()
    }

    /// Average number of outstanding memory requests per cycle (Figure 1b).
    #[must_use]
    pub fn avg_outstanding_misses(&self) -> f64 {
        self.occupancy.outstanding_misses.mean()
    }

    /// Speed-up of this run over `baseline`, in percent (positive = faster),
    /// the normalisation used throughout the paper's figures.
    #[must_use]
    pub fn speedup_over_percent(&self, baseline: &RunResult) -> f64 {
        ltp_stats::speedup_percent(baseline.cpi(), self.cpi())
    }

    /// MLP-sensitivity criteria of §4.1 relative to a small-IQ run: the
    /// larger window must give at least 5 % speed-up, at least 10 % more
    /// outstanding requests, and the average memory latency must exceed the
    /// L2 latency.
    #[must_use]
    pub fn is_mlp_sensitive_vs(&self, small_iq_run: &RunResult, l2_latency: u64) -> bool {
        let speedup = self.speedup_over_percent(small_iq_run);
        let mlp_small = small_iq_run.avg_outstanding_misses().max(1e-9);
        let mlp_gain = (self.avg_outstanding_misses() - mlp_small) / mlp_small * 100.0;
        let avg_latency = self.mem.avg_latency();
        speedup > 5.0 && mlp_gain > 10.0 && avg_latency > l2_latency as f64
    }
}

/// The result of an SMT co-run: one [`RunResult`] per hardware thread over a
/// single shared-cycle timeline.
///
/// Each thread's result carries the thread's own statistics with `cycles`
/// set to the cycle at which *that thread* drained, so per-thread IPC covers
/// the thread's active window and is not diluted by a co-runner's tail. The
/// aggregate metrics use the shared timeline ([`SmtRunResult::cycles`], the
/// cycle the whole co-run finished). The memory statistics inside each
/// thread's result are those of the *shared* hierarchy (they cannot be
/// attributed to one thread).
#[derive(Debug, Clone)]
pub struct SmtRunResult {
    /// Simulated cycles of the whole co-run (all threads drained).
    pub cycles: u64,
    /// Per-thread results, indexed by thread id.
    pub threads: Vec<RunResult>,
}

impl SmtRunResult {
    /// Total instructions committed across all threads.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.threads.iter().map(|t| t.instructions).sum()
    }

    /// Aggregate throughput in instructions per cycle (the SMT headline
    /// metric: total committed work divided by the shared cycle count).
    #[must_use]
    pub fn aggregate_ipc(&self) -> f64 {
        self.total_instructions() as f64 / self.cycles.max(1) as f64
    }

    /// Per-thread instructions per cycle over the thread's own active window
    /// (zero for a thread that committed nothing).
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[must_use]
    pub fn thread_ipc(&self, tid: usize) -> f64 {
        let t = &self.threads[tid];
        if t.instructions == 0 {
            0.0
        } else {
            t.ipc()
        }
    }
}

/// A frozen view of the machine at the moment a deadlock was detected,
/// carried by [`RunError::Deadlock`] so a stuck configuration surfaces as
/// inspectable data instead of a panic string.
#[derive(Debug, Clone)]
pub struct DeadlockSnapshot {
    /// Name of the workload that was running.
    pub workload: String,
    /// Instructions committed before progress stopped.
    pub committed: u64,
    /// Occupied ROB entries.
    pub rob_len: usize,
    /// Occupied IQ entries.
    pub iq_len: usize,
    /// Instructions parked in the LTP.
    pub ltp_occupancy: usize,
    /// The ROB head blocking commit, if any: `(seq, state, op)`.
    pub head: Option<(SeqNum, RobState, OpClass)>,
    /// Configured IQ capacity.
    pub iq_size: usize,
    /// Free integer registers.
    pub int_regs_available: usize,
    /// Free floating point registers.
    pub fp_regs_available: usize,
    /// Occupied LQ entries.
    pub lq_len: usize,
    /// Occupied SQ entries.
    pub sq_len: usize,
    /// The LTP mode the machine was configured with.
    pub ltp_mode: LtpMode,
}

impl std::fmt::Display for DeadlockSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workload {}, committed {}, ROB {}, IQ {}, LTP {}, head {:?}, iq_size {}, \
             regs {}/{}, lq {}, sq {}, ltp mode {:?}",
            self.workload,
            self.committed,
            self.rob_len,
            self.iq_len,
            self.ltp_occupancy,
            self.head,
            self.iq_size,
            self.int_regs_available,
            self.fp_regs_available,
            self.lq_len,
            self.sq_len,
            self.ltp_mode,
        )
    }
}

/// Why a simulation run could not produce a [`RunResult`].
#[derive(Debug, Clone)]
pub enum RunError {
    /// No instruction committed for a very long time: a resource-accounting
    /// deadlock (a bug or an intentionally starved configuration), with the
    /// machine state at detection time.
    Deadlock {
        /// The cycle at which the deadlock was detected.
        cycle: Cycle,
        /// The machine state at detection time (boxed to keep the happy-path
        /// `Result` small).
        snapshot: Box<DeadlockSnapshot>,
    },
    /// The configuration selects the oracle classifier
    /// ([`ltp_core::ClassifierKind::Oracle`]) but no analysed
    /// [`ltp_core::OracleClassifier`] was attached before the run, so the
    /// results would silently come from the fallback classifier.
    OracleNotAttached,
    /// The machine state cannot be checkpointed (SMT configuration, or a
    /// custom criticality classifier without snapshot support); carried as a
    /// message so `RunError` does not grow a type dependency on the snapshot
    /// module.
    SnapshotUnsupported(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Deadlock { cycle, snapshot } => write!(
                f,
                "no instruction committed for a long time at cycle {cycle} ({snapshot}): \
                 resource accounting deadlock"
            ),
            RunError::OracleNotAttached => write!(
                f,
                "the configuration selects ClassifierKind::Oracle but no analysed \
                 OracleClassifier was attached (Processor::set_oracle) before the run"
            ),
            RunError::SnapshotUnsupported(msg) => {
                write!(f, "machine state cannot be checkpointed: {msg}")
            }
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_error_display_carries_the_snapshot() {
        let err = RunError::Deadlock {
            cycle: 1234,
            snapshot: Box::new(DeadlockSnapshot {
                workload: "chain".into(),
                committed: 17,
                rob_len: 256,
                iq_len: 32,
                ltp_occupancy: 5,
                head: Some((SeqNum(17), RobState::Parked, OpClass::Load)),
                iq_size: 32,
                int_regs_available: 0,
                fp_regs_available: 96,
                lq_len: 3,
                sq_len: 0,
                ltp_mode: LtpMode::NonUrgentOnly,
            }),
        };
        let text = err.to_string();
        assert!(text.contains("cycle 1234"));
        assert!(text.contains("workload chain"));
        assert!(text.contains("deadlock"));
        let RunError::Deadlock { cycle, snapshot } = err else {
            panic!("constructed a deadlock, matched something else");
        };
        assert_eq!(cycle, 1234);
        assert_eq!(snapshot.committed, 17);
    }

    fn result(cycles: u64, insts: u64, outstanding: f64, avg_latency: f64) -> RunResult {
        let mut occupancy = OccupancyReport::default();
        occupancy
            .outstanding_misses
            .sample(cycles.max(1), outstanding.round() as u64);
        let mem = MemoryStats {
            accesses: 100,
            total_latency: (avg_latency * 100.0) as u64,
            ..Default::default()
        };
        RunResult {
            workload: "test".into(),
            cycles,
            instructions: insts,
            occupancy,
            activity: ActivityCounters::default(),
            ltp: LtpStats::default(),
            ltp_enabled_fraction: 0.0,
            mem,
            branch_mispredict_rate: 0.0,
            loads: 10,
            stores: 5,
            llc_miss_loads: 2,
        }
    }

    #[test]
    fn cpi_and_ipc() {
        let r = result(2000, 1000, 1.0, 10.0);
        assert!((r.cpi() - 2.0).abs() < 1e-12);
        assert!((r.ipc() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no instructions")]
    fn cpi_of_empty_run_panics() {
        let r = result(100, 0, 0.0, 0.0);
        let _ = r.cpi();
    }

    #[test]
    fn speedup_direction() {
        let slow = result(3000, 1000, 1.0, 10.0);
        let fast = result(2000, 1000, 1.0, 10.0);
        assert!(fast.speedup_over_percent(&slow) > 0.0);
        assert!(slow.speedup_over_percent(&fast) < 0.0);
    }

    #[test]
    fn mlp_sensitivity_criteria() {
        // Big-window run: 20 % faster, 50 % more outstanding, latency > L2.
        let small = result(3000, 1000, 2.0, 30.0);
        let big = result(2400, 1000, 3.0, 30.0);
        assert!(big.is_mlp_sensitive_vs(&small, 12));
        // Not sensitive when the speed-up is too small.
        let big_same = result(2950, 1000, 3.0, 30.0);
        assert!(!big_same.is_mlp_sensitive_vs(&small, 12));
        // Not sensitive when the latency is below the L2 latency.
        let big_lowlat = result(2400, 1000, 3.0, 8.0);
        assert!(!big_lowlat.is_mlp_sensitive_vs(&small, 12));
    }

    #[test]
    fn avg_outstanding_uses_occupancy_tracker() {
        let r = result(100, 50, 4.0, 10.0);
        assert!((r.avg_outstanding_misses() - 4.0).abs() < 1e-9);
    }
}
