//! Branch direction prediction (gshare).
//!
//! The trace already contains the actual branch outcomes, so the model only
//! needs a direction predictor to decide whether the front end suffers a
//! redirect penalty. A standard gshare predictor (global history XOR PC into
//! a table of 2-bit counters) is used; its accuracy on the synthetic kernels
//! is high for loop branches and low for data-dependent branches, which is
//! the behaviour the workloads rely on.

use ltp_isa::Pc;

/// Geometry of the gshare predictor: table entries and global history bits.
///
/// The pipeline always builds [`BranchPredictor::default_sized`] today, but
/// the geometry is part of the *warm-up* half of the configuration split
/// ([`crate::WarmupConfig`]): functional fast-forward trains a predictor of
/// this shape, so checkpoint-cache keys must change whenever it does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorGeometry {
    /// Number of 2-bit counters (non-zero power of two).
    pub table_entries: usize,
    /// Global history length in bits (at most 24).
    pub history_bits: u32,
}

impl PredictorGeometry {
    /// The geometry of [`BranchPredictor::default_sized`].
    #[must_use]
    pub fn default_sized() -> PredictorGeometry {
        PredictorGeometry {
            table_entries: 4096,
            history_bits: 12,
        }
    }

    /// Builds a fresh (untrained) predictor of this geometry.
    #[must_use]
    pub fn build(self) -> BranchPredictor {
        BranchPredictor::new(self.table_entries, self.history_bits)
    }
}

impl Default for PredictorGeometry {
    fn default() -> Self {
        PredictorGeometry::default_sized()
    }
}

/// A gshare branch direction predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    pub(crate) counters: Vec<u8>,
    pub(crate) mask: usize,
    pub(crate) history: u64,
    pub(crate) history_bits: u32,
    pub(crate) predictions: u64,
    pub(crate) mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `table_entries` 2-bit counters and
    /// `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a non-zero power of two or
    /// `history_bits` exceeds 24.
    #[must_use]
    pub fn new(table_entries: usize, history_bits: u32) -> BranchPredictor {
        assert!(
            table_entries.is_power_of_two() && table_entries > 0,
            "branch predictor table must be a non-zero power of two"
        );
        assert!(history_bits <= 24, "history length is limited to 24 bits");
        BranchPredictor {
            counters: vec![2; table_entries], // weakly taken
            mask: table_entries - 1,
            history: 0,
            history_bits,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// A 4096-entry, 12-bit-history predictor, a reasonable match for a large
    /// core front end.
    #[must_use]
    pub fn default_sized() -> BranchPredictor {
        PredictorGeometry::default_sized().build()
    }

    /// The geometry this predictor was built with.
    #[must_use]
    pub fn geometry(&self) -> PredictorGeometry {
        PredictorGeometry {
            table_entries: self.counters.len(),
            history_bits: self.history_bits,
        }
    }

    fn index(&self, pc: Pc) -> usize {
        (((pc.0 >> 2) ^ self.history) as usize) & self.mask
    }

    /// Predicts the direction of the branch at `pc`, then updates the
    /// predictor with the actual outcome `taken`. Returns `true` when the
    /// prediction was wrong (the front end must be redirected).
    pub fn predict_and_update(&mut self, pc: Pc, taken: bool) -> bool {
        self.predictions += 1;
        let idx = self.index(pc);
        let predicted_taken = self.counters[idx] >= 2;
        let mispredicted = predicted_taken != taken;
        if mispredicted {
            self.mispredictions += 1;
        }
        if taken {
            self.counters[idx] = (self.counters[idx] + 1).min(3);
        } else {
            self.counters[idx] = self.counters[idx].saturating_sub(1);
        }
        let mask = (1u64 << self.history_bits) - 1;
        self.history = ((self.history << 1) | u64::from(taken)) & mask;
        mispredicted
    }

    /// Batched [`BranchPredictor::predict_and_update`] over a run of resolved
    /// branches, discarding the per-branch misprediction flags (functional
    /// replay trains the predictor; nothing redirects). State updates —
    /// counters, history, prediction/misprediction totals — are exactly those
    /// of the per-branch calls, in the same order; the batch amortizes the
    /// cross-crate call dispatch over a whole sample interval.
    pub fn train_batch<I>(&mut self, outcomes: I)
    where
        I: IntoIterator<Item = (Pc, bool)>,
    {
        for (pc, taken) in outcomes {
            let _ = self.predict_and_update(pc, taken);
        }
    }

    /// Number of branches predicted.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Number of mispredictions.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in 0..=1.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::default_sized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_branch_becomes_predictable() {
        let mut bp = BranchPredictor::default_sized();
        let pc = Pc(0x100);
        let mut late_mispredicts = 0;
        for i in 0..1000 {
            let m = bp.predict_and_update(pc, true);
            if i >= 10 && m {
                late_mispredicts += 1;
            }
        }
        assert_eq!(
            late_mispredicts, 0,
            "an always-taken branch must be learned"
        );
    }

    #[test]
    fn alternating_branch_with_history_is_learned() {
        let mut bp = BranchPredictor::new(4096, 8);
        let pc = Pc(0x200);
        for i in 0..200u32 {
            bp.predict_and_update(pc, i % 2 == 0);
        }
        let mut mispredicts = 0;
        for i in 200..400u32 {
            if bp.predict_and_update(pc, i % 2 == 0) {
                mispredicts += 1;
            }
        }
        assert!(
            mispredicts < 20,
            "alternating pattern should be mostly learned, got {mispredicts}"
        );
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut bp = BranchPredictor::default_sized();
        let pc = Pc(0x300);
        // A pseudo-random but deterministic pattern.
        let mut x = 0x12345678u64;
        let mut mispredicts = 0;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 40) & 1 == 1;
            if bp.predict_and_update(pc, taken) {
                mispredicts += 1;
            }
        }
        assert!(
            mispredicts > 500,
            "random outcomes cannot be well predicted"
        );
        assert!(bp.misprediction_rate() > 0.25);
    }

    #[test]
    fn counters_track_statistics() {
        let mut bp = BranchPredictor::default_sized();
        bp.predict_and_update(Pc(0x10), true);
        bp.predict_and_update(Pc(0x10), false);
        assert_eq!(bp.predictions(), 2);
        assert!(bp.mispredictions() <= 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_table_size_panics() {
        let _ = BranchPredictor::new(1000, 8);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn too_much_history_panics() {
        let _ = BranchPredictor::new(1024, 32);
    }
}
