//! # ltp-snapshot
//!
//! A versioned, compact binary codec for checkpointing simulator machine
//! state (the `ltp-pipeline` `Snapshot` type and everything reachable from
//! it).
//!
//! Design constraints, in order:
//!
//! 1. **Fidelity** — decoding a snapshot must reconstruct machine state that
//!    behaves *bit-for-bit* like the original (the pipeline pins this against
//!    its golden fingerprints). Every ordered container is therefore encoded
//!    verbatim; only containers whose iteration order is behaviourally
//!    irrelevant (hash maps/sets, binary heaps) are canonicalised by sorting.
//! 2. **Canonical bytes** — encoding the decoded value again must produce the
//!    same bytes (`encode(decode(encode(x))) == encode(x)`), so round-trip
//!    property tests can compare byte strings instead of needing `Eq` on
//!    every machine structure.
//! 3. **Compactness** — integers use LEB128 varints; machine state is
//!    dominated by small integers (sequence numbers relative to shared bases
//!    are not attempted — plain varints already shrink checkpoints by ~4x
//!    over fixed-width fields).
//!
//! The codec is deliberately *not* self-describing: the layout is defined by
//! the `Codec` implementations, and the envelope carries a format version
//! that is bumped whenever any implementation changes shape. A version
//! mismatch is a clean [`SnapError::Version`] instead of garbage state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Magic bytes opening every snapshot envelope.
pub const MAGIC: [u8; 8] = *b"LTPSNAP\0";

/// Current snapshot format version. Bump on **any** change to a `Codec`
/// implementation's field set or ordering.
///
/// v2: sparse per-set cache-line layout (way bitmap + packed flags) — a
/// lightly warmed cache encodes in a fraction of the dense size, which is
/// what keeps per-interval journaling affordable.
pub const FORMAT_VERSION: u32 = 2;

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended before the value was complete.
    Truncated,
    /// A varint ran longer than the maximum width of its type.
    VarintOverflow,
    /// An enum discriminant or flag byte had no defined meaning.
    BadTag(u32),
    /// The envelope does not start with [`MAGIC`].
    BadMagic,
    /// The envelope was written by an incompatible format version.
    Version {
        /// Version found in the envelope.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// Trailing bytes after the payload (shape drift between encode/decode).
    TrailingBytes(usize),
    /// A domain-level invariant failed while rebuilding state (message is
    /// static so decoding never allocates error strings in the happy path).
    Invalid(&'static str),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::VarintOverflow => write!(f, "varint wider than its type"),
            SnapError::BadTag(t) => write!(f, "unknown enum tag {t}"),
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::Version { found, expected } => {
                write!(f, "snapshot format v{found}, this build reads v{expected}")
            }
            SnapError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            SnapError::Invalid(msg) => write!(f, "invalid snapshot state: {msg}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Byte sink the codec writes into.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Writer {
        Writer {
            buf: Vec::with_capacity(4096),
        }
    }

    /// Creates an empty writer with `capacity` bytes pre-reserved. Use when
    /// the encoded size is known up front (e.g. re-framing an already
    /// encoded payload) to skip the doubling-growth copies.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the raw payload bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one raw byte.
    pub fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Appends raw bytes verbatim.
    pub fn bytes(&mut self, bs: &[u8]) {
        self.buf.extend_from_slice(bs);
    }

    /// Appends a LEB128 varint.
    ///
    /// Snapshot payloads are tens of thousands of varints (cache tags
    /// dominate), so the two layouts are split: the single-byte case — the
    /// majority — is one `push`, and multi-byte values encode into a stack
    /// buffer first so the vector grows once instead of byte-by-byte.
    pub fn varint(&mut self, mut v: u64) {
        if v < 0x80 {
            self.buf.push(v as u8);
            return;
        }
        let mut tmp = [0u8; 10];
        let mut n = 0;
        loop {
            let mut b = (v & 0x7f) as u8;
            v >>= 7;
            if v != 0 {
                b |= 0x80;
            }
            tmp[n] = b;
            n += 1;
            if v == 0 {
                break;
            }
        }
        self.buf.extend_from_slice(&tmp[..n]);
    }
}

/// Byte source the codec reads from.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over a payload.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one raw byte.
    pub fn byte(&mut self) -> Result<u8, SnapError> {
        let b = *self.buf.get(self.pos).ok_or(SnapError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        let out = self.buf.get(self.pos..end).ok_or(SnapError::Truncated)?;
        self.pos = end;
        Ok(out)
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, SnapError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 || (shift == 63 && (b & 0x7e) != 0) {
                return Err(SnapError::VarintOverflow);
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

/// A type that can be written to / read from the snapshot byte stream.
///
/// `encode(decode(encode(x))) == encode(x)` must hold for every
/// implementation (canonical bytes), and the decoded value must be
/// *behaviourally* identical to the original.
pub trait Codec: Sized {
    /// Writes `self` to the stream.
    fn write(&self, w: &mut Writer);
    /// Reads a value from the stream.
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError>;
}

// --- primitives -------------------------------------------------------------

impl Codec for bool {
    fn write(&self, w: &mut Writer) {
        w.byte(u8::from(*self));
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match r.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapError::BadTag(u32::from(t))),
        }
    }
}

impl Codec for u8 {
    fn write(&self, w: &mut Writer) {
        w.byte(*self);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.byte()
    }
}

macro_rules! impl_codec_varint {
    ($($ty:ty),+) => {$(
        impl Codec for $ty {
            fn write(&self, w: &mut Writer) {
                w.varint(*self as u64);
            }
            fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
                let v = r.varint()?;
                <$ty>::try_from(v).map_err(|_| SnapError::VarintOverflow)
            }
        }
    )+};
}
impl_codec_varint!(u16, u32, u64);

impl Codec for usize {
    fn write(&self, w: &mut Writer) {
        w.varint(*self as u64);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        usize::try_from(r.varint()?).map_err(|_| SnapError::VarintOverflow)
    }
}

impl Codec for u128 {
    fn write(&self, w: &mut Writer) {
        w.varint(*self as u64);
        w.varint((*self >> 64) as u64);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let lo = r.varint()?;
        let hi = r.varint()?;
        Ok(u128::from(lo) | (u128::from(hi) << 64))
    }
}

impl Codec for i64 {
    fn write(&self, w: &mut Writer) {
        // Zigzag so small negative strides stay short.
        w.varint(((*self << 1) ^ (*self >> 63)) as u64);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let v = r.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }
}

impl Codec for f64 {
    fn write(&self, w: &mut Writer) {
        w.bytes(&self.to_bits().to_le_bytes());
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let bs = r.bytes(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bs);
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }
}

impl Codec for String {
    fn write(&self, w: &mut Writer) {
        w.varint(self.len() as u64);
        w.bytes(self.as_bytes());
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = usize::try_from(r.varint()?).map_err(|_| SnapError::VarintOverflow)?;
        let bs = r.bytes(n)?;
        String::from_utf8(bs.to_vec()).map_err(|_| SnapError::Invalid("non-utf8 string"))
    }
}

// --- compounds --------------------------------------------------------------

impl<T: Codec> Codec for Option<T> {
    fn write(&self, w: &mut Writer) {
        match self {
            None => w.byte(0),
            Some(v) => {
                w.byte(1);
                v.write(w);
            }
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match r.byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::read(r)?)),
            t => Err(SnapError::BadTag(u32::from(t))),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn write(&self, w: &mut Writer) {
        self.0.write(w);
        self.1.write(w);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::read(r)?, B::read(r)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn write(&self, w: &mut Writer) {
        self.0.write(w);
        self.1.write(w);
        self.2.write(w);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::read(r)?, B::read(r)?, C::read(r)?))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn write(&self, w: &mut Writer) {
        w.varint(self.len() as u64);
        for v in self {
            v.write(w);
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = usize::try_from(r.varint()?).map_err(|_| SnapError::VarintOverflow)?;
        // Guard against pathological lengths in corrupted streams: each
        // element consumes at least one byte.
        if n > r.remaining() {
            return Err(SnapError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::read(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for VecDeque<T> {
    fn write(&self, w: &mut Writer) {
        w.varint(self.len() as u64);
        for v in self {
            v.write(w);
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Vec::<T>::read(r)?.into())
    }
}

impl<T: Codec, const N: usize> Codec for [T; N] {
    fn write(&self, w: &mut Writer) {
        for v in self {
            v.write(w);
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::read(r)?);
        }
        out.try_into()
            .map_err(|_| SnapError::Invalid("array length"))
    }
}

impl<T: Codec + Copy + Default, const N: usize> Codec for inlinevec::InlineVec<T, N> {
    fn write(&self, w: &mut Writer) {
        w.varint(self.len() as u64);
        for v in self.iter() {
            v.write(w);
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = usize::try_from(r.varint()?).map_err(|_| SnapError::VarintOverflow)?;
        if n > r.remaining() {
            return Err(SnapError::Truncated);
        }
        let mut out = inlinevec::InlineVec::new();
        for _ in 0..n {
            out.push(T::read(r)?);
        }
        Ok(out)
    }
}

// Hash containers are canonicalised by sorting on the key: their iteration
// order is unspecified, so the sort both makes the bytes deterministic and is
// safe exactly when the simulator never depends on that order (which the
// golden-fingerprint restore tests verify end to end).
impl<K: Codec + Ord + Copy + std::hash::Hash + Eq, V: Codec> Codec for HashMap<K, V> {
    fn write(&self, w: &mut Writer) {
        let mut keys: Vec<K> = self.keys().copied().collect();
        keys.sort_unstable();
        w.varint(keys.len() as u64);
        for k in keys {
            k.write(w);
            self[&k].write(w);
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = usize::try_from(r.varint()?).map_err(|_| SnapError::VarintOverflow)?;
        if n > r.remaining() {
            return Err(SnapError::Truncated);
        }
        let mut out = HashMap::with_capacity(n.max(64));
        for _ in 0..n {
            let k = K::read(r)?;
            let v = V::read(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Codec + Ord + Copy + std::hash::Hash + Eq> Codec for HashSet<K> {
    fn write(&self, w: &mut Writer) {
        let mut keys: Vec<K> = self.iter().copied().collect();
        keys.sort_unstable();
        keys.write(w);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Vec::<K>::read(r)?.into_iter().collect())
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn write(&self, w: &mut Writer) {
        w.varint(self.len() as u64);
        for (k, v) in self {
            k.write(w);
            v.write(w);
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = usize::try_from(r.varint()?).map_err(|_| SnapError::VarintOverflow)?;
        if n > r.remaining() {
            return Err(SnapError::Truncated);
        }
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::read(r)?;
            let v = V::read(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Codec + Ord> Codec for BTreeSet<K> {
    fn write(&self, w: &mut Writer) {
        w.varint(self.len() as u64);
        for k in self {
            k.write(w);
        }
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = usize::try_from(r.varint()?).map_err(|_| SnapError::VarintOverflow)?;
        if n > r.remaining() {
            return Err(SnapError::Truncated);
        }
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(K::read(r)?);
        }
        Ok(out)
    }
}

/// Implements [`Codec`] for a struct by writing/reading every listed field in
/// order. All fields must be listed (the expansion uses struct literal
/// syntax, which the compiler checks for exhaustiveness).
#[macro_export]
macro_rules! impl_codec {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Codec for $ty {
            fn write(&self, w: &mut $crate::Writer) {
                $( $crate::Codec::write(&self.$field, w); )+
            }
            fn read(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::SnapError> {
                Ok(Self { $( $field: $crate::Codec::read(r)? ),+ })
            }
        }
    };
}

/// Implements [`Codec`] for a fieldless enum with explicit stable tags.
#[macro_export]
macro_rules! impl_codec_enum {
    ($ty:ty { $($variant:path = $tag:literal),+ $(,)? }) => {
        impl $crate::Codec for $ty {
            fn write(&self, w: &mut $crate::Writer) {
                let tag: u8 = match self {
                    $( $variant => $tag, )+
                };
                w.byte(tag);
            }
            fn read(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::SnapError> {
                match r.byte()? {
                    $( $tag => Ok($variant), )+
                    t => Err($crate::SnapError::BadTag(u32::from(t))),
                }
            }
        }
    };
}

// --- envelope ---------------------------------------------------------------

/// Encodes `value` into a versioned envelope: magic, format version, payload.
pub fn encode_envelope<T: Codec>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(&MAGIC);
    w.varint(u64::from(FORMAT_VERSION));
    value.write(&mut w);
    w.into_bytes()
}

/// Decodes a value from a versioned envelope, rejecting wrong magic, wrong
/// version, or trailing bytes.
pub fn decode_envelope<T: Codec>(bytes: &[u8]) -> Result<T, SnapError> {
    let mut r = Reader::new(bytes);
    if r.bytes(MAGIC.len())? != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = u32::try_from(r.varint()?).map_err(|_| SnapError::VarintOverflow)?;
    if version != FORMAT_VERSION {
        return Err(SnapError::Version {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let value = T::read(&mut r)?;
    if r.remaining() != 0 {
        return Err(SnapError::TrailingBytes(r.remaining()));
    }
    Ok(value)
}

/// Encodes a value into raw payload bytes (no envelope); test helper.
pub fn encode_value<T: Codec>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.write(&mut w);
    w.into_bytes()
}

// --- checksummed record framing ---------------------------------------------
//
// An append-only log of independently-checksummed records: the persistence
// shape the fault-tolerant sampled runner journals completed intervals into.
// Each record stands alone (length prefix, payload, FNV-1a 64 checksum), so a
// reader can recover every record written before a crash or a corruption and
// cleanly stop at the first bad one — the log degrades record-by-record
// instead of all-or-nothing.

/// FNV-1a 64-bit hash of `bytes` — the checksum used by [`frame_record`] and
/// a convenient stable digest for result fingerprinting. Not cryptographic;
/// it detects truncation and bit flips, not adversaries.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit over 8-byte little-endian lanes (remainder bytes feed in
/// one at a time) — the frame checksum of [`frame_record`]. Same detection
/// class as [`fnv1a64`] (truncation, bit flips) at ~8× the throughput, which
/// matters because journal frames carry ~100 kB encoded checkpoints and are
/// checksummed on the simulation's critical path.
#[must_use]
pub fn fnv1a64_lanes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for lane in &mut chunks {
        let mut arr = [0u8; 8];
        arr.copy_from_slice(lane);
        h ^= u64::from_le_bytes(arr);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Frames one record for an append-only log: varint payload length, the
/// payload, and the payload's [`fnv1a64_lanes`] checksum as 8 little-endian
/// bytes.
#[must_use]
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_capacity(payload.len() + 18);
    w.varint(payload.len() as u64);
    w.bytes(payload);
    w.bytes(&fnv1a64_lanes(payload).to_le_bytes());
    w.into_bytes()
}

/// Finishes a frame whose length prefix and payload were written directly
/// into `w`: given a writer holding exactly `varint(payload_len)` followed
/// by `payload_len` payload bytes, appends the payload's checksum and
/// returns the finished frame. Byte-identical to `frame_record(&payload)`,
/// but the payload is encoded in place instead of being copied into the
/// frame afterwards — the journal drain frames multi-kilobyte checkpoint
/// records on the run's critical tail.
#[must_use]
pub fn finish_frame(w: Writer, payload_len: usize) -> Vec<u8> {
    let mut buf = w.into_bytes();
    debug_assert!(buf.len() >= payload_len, "writer holds prefix + payload");
    let start = buf.len() - payload_len;
    let sum = fnv1a64_lanes(&buf[start..]);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Why a framed record could not be read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// The log ended mid-record (e.g. a crash during an append). Everything
    /// before this point was read successfully.
    Truncated,
    /// The record's checksum did not match its payload (bit rot, a torn
    /// write, or injected corruption).
    Corrupt,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "record log truncated mid-record"),
            RecordError::Corrupt => write!(f, "record checksum mismatch"),
        }
    }
}

impl std::error::Error for RecordError {}

/// Iterates the records of a [`frame_record`] log, yielding each payload.
/// Stops permanently at the first truncated or corrupt record (returning it
/// as an `Err`): bytes after a bad frame cannot be trusted to be aligned.
#[derive(Debug)]
pub struct RecordIter<'a> {
    r: Reader<'a>,
    dead: bool,
}

impl<'a> RecordIter<'a> {
    /// Creates an iterator over a record log.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> RecordIter<'a> {
        RecordIter {
            r: Reader::new(bytes),
            dead: false,
        }
    }
}

impl<'a> Iterator for RecordIter<'a> {
    type Item = Result<&'a [u8], RecordError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.dead || self.r.remaining() == 0 {
            return None;
        }
        let fail = |me: &mut Self, e| {
            me.dead = true;
            Some(Err(e))
        };
        let Ok(len) = self.r.varint() else {
            return fail(self, RecordError::Truncated);
        };
        let Ok(len) = usize::try_from(len) else {
            return fail(self, RecordError::Truncated);
        };
        // The checksum trailer must also fit — a length that "lies" past the
        // end of the buffer is indistinguishable from truncation.
        if len.checked_add(8).is_none_or(|n| n > self.r.remaining()) {
            return fail(self, RecordError::Truncated);
        }
        let payload = self.r.bytes(len).expect("length checked above");
        let sum_bytes = self.r.bytes(8).expect("length checked above");
        let mut arr = [0u8; 8];
        arr.copy_from_slice(sum_bytes);
        if fnv1a64_lanes(payload) != u64::from_le_bytes(arr) {
            return fail(self, RecordError::Corrupt);
        }
        Some(Ok(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_value(&v);
        let mut r = Reader::new(&bytes);
        let back = T::read(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0, "trailing bytes for {v:?}");
        assert_eq!(back, v);
        assert_eq!(encode_value(&back), bytes, "non-canonical bytes for {v:?}");
    }

    #[test]
    fn primitive_roundtrips() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            roundtrip(v);
        }
        for v in [0usize, 42, usize::MAX] {
            roundtrip(v);
        }
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            roundtrip(v);
        }
        for v in [0.0f64, -1.5, f64::INFINITY, f64::MIN_POSITIVE] {
            roundtrip(v);
        }
        roundtrip(true);
        roundtrip(false);
        roundtrip(0xAAu8);
        roundtrip(u128::MAX);
        roundtrip(String::from("workload/name"));
    }

    #[test]
    fn compound_roundtrips() {
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip((1u64, true, 300u32));
        roundtrip(VecDeque::from(vec![9u64, 8]));
        roundtrip([1u64, 2, 3]);
        roundtrip(std::collections::BTreeSet::from([3u64, 1, 2]));
        roundtrip(std::collections::BTreeMap::from([(1u64, 2u64), (3, 4)]));
    }

    #[test]
    fn hash_containers_are_canonical() {
        // Two maps built in different insertion orders encode identically.
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for k in 0u64..64 {
            a.insert(k, k * 2);
        }
        for k in (0u64..64).rev() {
            b.insert(k, k * 2);
        }
        assert_eq!(encode_value(&a), encode_value(&b));
        let set_a: HashSet<u64> = (0..64).collect();
        let set_b: HashSet<u64> = (0..64).rev().collect();
        assert_eq!(encode_value(&set_a), encode_value(&set_b));
    }

    #[test]
    fn inline_vec_roundtrip() {
        let mut v: inlinevec::InlineVec<u64, 2> = inlinevec::InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        let bytes = encode_value(&v);
        let mut r = Reader::new(&bytes);
        let back: inlinevec::InlineVec<u64, 2> = Codec::read(&mut r).unwrap();
        assert_eq!(back.as_slice(), v.as_slice());
    }

    #[test]
    fn envelope_rejects_garbage() {
        let bytes = encode_envelope(&42u64);
        assert_eq!(decode_envelope::<u64>(&bytes), Ok(42));
        assert_eq!(
            decode_envelope::<u64>(b"nonsense"),
            Err(SnapError::BadMagic)
        );
        // Wrong version.
        let mut w = Writer::new();
        w.bytes(&MAGIC);
        w.varint(u64::from(FORMAT_VERSION + 1));
        w.varint(42);
        assert!(matches!(
            decode_envelope::<u64>(&w.into_bytes()),
            Err(SnapError::Version { .. })
        ));
        // Trailing bytes.
        let mut bytes = encode_envelope(&42u64);
        bytes.push(0);
        assert!(matches!(
            decode_envelope::<u64>(&bytes),
            Err(SnapError::TrailingBytes(1))
        ));
        // Truncated payload.
        let bytes = encode_envelope(&(1u64, 2u64));
        assert!(matches!(
            decode_envelope::<(u64, u64)>(&bytes[..bytes.len() - 1]),
            Err(SnapError::Truncated)
        ));
    }

    #[test]
    fn record_log_roundtrip_and_degradation() {
        let payloads: [&[u8]; 3] = [b"alpha", b"", b"gamma-record"];
        let mut log = Vec::new();
        for p in payloads {
            log.extend_from_slice(&frame_record(p));
        }
        let got: Vec<_> = RecordIter::new(&log).collect();
        assert_eq!(got.len(), 3);
        for (g, p) in got.iter().zip(payloads) {
            assert_eq!(*g, Ok(p));
        }

        // Truncation mid-record: earlier records survive, the torn one reads
        // as Truncated, iteration stops.
        let cut = &log[..log.len() - 3];
        let got: Vec<_> = RecordIter::new(cut).collect();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], Ok(&b"alpha"[..]));
        assert_eq!(got[2], Err(RecordError::Truncated));

        // A bit flip in a payload reads as Corrupt and stops iteration (the
        // following record is unreachable: framing cannot be trusted).
        let mut flipped = log.clone();
        flipped[2] ^= 0x40;
        let got: Vec<_> = RecordIter::new(&flipped).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], Err(RecordError::Corrupt));

        // A length prefix lying beyond the buffer is truncation, not a huge
        // allocation.
        let mut lying = Writer::new();
        lying.varint(u64::MAX);
        lying.bytes(b"tiny");
        let lying = lying.into_bytes();
        let got: Vec<_> = RecordIter::new(&lying).collect();
        assert_eq!(got, vec![Err(RecordError::Truncated)]);

        assert_eq!(RecordIter::new(&[]).count(), 0);
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned reference values (offset basis and the standard test vector)
        // so the on-disk journal checksum can never silently change.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn varint_overflow_detected() {
        // 11 continuation bytes cannot fit in a u64.
        let bytes = [0xffu8; 11];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.varint(), Err(SnapError::VarintOverflow));
    }

    #[test]
    fn macro_structs_and_enums() {
        #[derive(Debug, PartialEq)]
        struct Demo {
            a: u64,
            b: Option<bool>,
            c: Vec<u8>,
        }
        impl_codec!(Demo { a, b, c });

        #[derive(Debug, PartialEq)]
        enum Mode {
            X,
            Y,
        }
        impl_codec_enum!(Mode { Mode::X = 0, Mode::Y = 1 });

        roundtrip(Demo {
            a: 9,
            b: Some(true),
            c: vec![1, 2],
        });
        roundtrip(Mode::X);
        roundtrip(Mode::Y);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn u64_roundtrip(v in any::<u64>()) {
                let bytes = encode_value(&v);
                let mut r = Reader::new(&bytes);
                prop_assert_eq!(u64::read(&mut r).unwrap(), v);
                prop_assert_eq!(r.remaining(), 0);
            }

            #[test]
            fn i64_roundtrip(v in any::<i64>()) {
                let bytes = encode_value(&v);
                let mut r = Reader::new(&bytes);
                prop_assert_eq!(i64::read(&mut r).unwrap(), v);
            }

            #[test]
            fn vec_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..64)) {
                let bytes = encode_value(&v);
                let mut r = Reader::new(&bytes);
                prop_assert_eq!(Vec::<u64>::read(&mut r).unwrap(), v);
                prop_assert_eq!(r.remaining(), 0);
            }

            #[test]
            fn decoder_never_panics_on_garbage(v in proptest::collection::vec(any::<u8>(), 0..128)) {
                // Decoding arbitrary bytes must fail cleanly, never panic.
                let _ = decode_envelope::<(u64, Vec<u64>, Option<bool>)>(&v);
            }
        }
    }
}
