#!/usr/bin/env bash
# Checkpoint-cache canary: proves the content-addressed cache works end to
# end on the real binary, not just in unit tests.
#
#   1. A cold `experiments sample --quick --cache DIR` run populates the
#      cache and defines the reference result digest. It must report >= 1
#      miss; configurations sharing a warm half already hit within the run
#      (IQ:32 and IQ:256 differ only in detail), so hits are legitimate
#      even here.
#   2. A second, warm run against the same directory must report 0 misses
#      and more hits than the cold run, spend strictly less time in the
#      functional pass (hits bypass the trace replay entirely), and print
#      the *same* result digest — cached warm-up is bit-exact, not
#      approximate.
#   3. After a byte of one cache entry is flipped, a third run must treat the
#      damage as a miss (>= 1 corrupt in the cache line), regenerate the
#      entry, and still reproduce the digest. Corruption can cost speed,
#      never correctness.
#
# The digest is the report's `result digest: 0x...` line — an FNV-1a over
# every measured interval's (workload, config, index, instructions, cycles).
#
# Usage: scripts/cache_canary.sh [OUT_DIR]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-cache-canary}"
BIN=(cargo run --release -q -p ltp --bin experiments --)
rm -rf "$OUT"
mkdir -p "$OUT"

digest_of() {
    # digest_of REPORT -> the hex digest, failing loudly if the line is gone
    awk '/^result digest:/ { print $3; found = 1 }
         END { if (!found) { print "no result digest line in " ARGV[1] > "/dev/stderr"; exit 1 } }' "$1"
}

hits_of()    { sed -n 's/^checkpoint cache: \([0-9][0-9]*\) hit.*/\1/p' "$1"; }
misses_of()  { sed -n 's/^checkpoint cache: [0-9]* hits*, \([0-9][0-9]*\) miss.*/\1/p' "$1"; }
corrupt_of() { sed -n 's/^checkpoint cache: .*(\([0-9][0-9]*\) corrupt).*/\1/p' "$1"; }
func_secs_of() {
    sed -n 's/^timing breakdown.*functional pass \([0-9.]*\)s.*/\1/p' "$1"
}

echo "== cache canary: cold run populating the cache"
"${BIN[@]}" sample --quick --out "$OUT/cold" --cache "$OUT/cache"
COLD_DIGEST="$(digest_of "$OUT/cold/sample.txt")"
COLD_HITS="$(hits_of "$OUT/cold/sample.txt")"
if [[ -z "$COLD_HITS" ]]; then
    echo "canary: no checkpoint-cache line in the cold report — report drift?" >&2
    exit 1
fi
if [[ "$(misses_of "$OUT/cold/sample.txt")" -lt 1 ]]; then
    echo "canary: cold run against an empty cache reported no misses" >&2
    exit 1
fi

echo "== cache canary: warm run served from the cache"
"${BIN[@]}" sample --quick --out "$OUT/warm" --cache "$OUT/cache"
WARM_DIGEST="$(digest_of "$OUT/warm/sample.txt")"
WARM_HITS="$(hits_of "$OUT/warm/sample.txt")"
if [[ "$WARM_HITS" -le "$COLD_HITS" ]]; then
    echo "canary: warm run hits ($WARM_HITS) did not exceed cold hits ($COLD_HITS)" >&2
    exit 1
fi
if [[ "$(misses_of "$OUT/warm/sample.txt")" -ne 0 ]]; then
    echo "canary: warm run still reported misses" >&2
    exit 1
fi
if [[ "$WARM_DIGEST" != "$COLD_DIGEST" ]]; then
    echo "canary: warm digest $WARM_DIGEST != cold digest $COLD_DIGEST" >&2
    exit 1
fi

# Speed gate: a cache hit replaces the trace replay with checkpoint
# rebuilds, so the functional-pass seconds must drop. At --quick scale the
# replay is short and on a single-core host the reported functional pass
# also absorbs queue-blocked time behind the detailed workers, so the
# honest expectation here is "strictly faster", not a large factor (PERF.md
# quantifies the real savings at sweep scale). The saved work is
# deterministic but the measurement rides on a shared CI host — take the
# best of up to three warm runs so a load spike cannot fail the gate (a
# real regression fails all three).
COLD_FUNC="$(func_secs_of "$OUT/cold/sample.txt")"
GATE_OK=""
for attempt in 1 2 3; do
    if [[ "$attempt" -gt 1 ]]; then
        echo "canary: speed gate retry $attempt"
        "${BIN[@]}" sample --quick --out "$OUT/warm" --cache "$OUT/cache"
    fi
    WARM_FUNC="$(func_secs_of "$OUT/warm/sample.txt")"
    echo "canary: functional pass cold ${COLD_FUNC}s -> warm ${WARM_FUNC}s"
    if awk -v c="$COLD_FUNC" -v w="$WARM_FUNC" 'BEGIN { exit !(w + 0 < c + 0) }'; then
        GATE_OK=1
        break
    fi
done
if [[ -z "$GATE_OK" ]]; then
    echo "canary: warm functional pass is not measurably faster than cold in 3 runs" >&2
    exit 1
fi

echo "== cache canary: corrupted entry is regenerated"
ENTRY="$(ls "$OUT/cache"/*.ckpt | head -n 1)"
if [[ -z "$ENTRY" ]]; then
    echo "canary: no cache entry files after two runs" >&2
    exit 1
fi
# Flip one byte in the middle of the entry with plain POSIX tools.
SIZE="$(wc -c < "$ENTRY")"
MID=$((SIZE / 2))
BYTE="$(dd if="$ENTRY" bs=1 skip="$MID" count=1 2>/dev/null | od -An -tu1 | tr -d ' ')"
printf "$(printf '\\%03o' $(((BYTE ^ 64) & 255)))" |
    dd of="$ENTRY" bs=1 seek="$MID" count=1 conv=notrunc 2>/dev/null

"${BIN[@]}" sample --quick --out "$OUT/corrupt" --cache "$OUT/cache"
CORRUPT_DIGEST="$(digest_of "$OUT/corrupt/sample.txt")"
if [[ "$CORRUPT_DIGEST" != "$COLD_DIGEST" ]]; then
    echo "canary: post-corruption digest $CORRUPT_DIGEST != cold digest $COLD_DIGEST" >&2
    exit 1
fi
if [[ "$(corrupt_of "$OUT/corrupt/sample.txt")" -lt 1 ]]; then
    echo "canary: corrupted entry was not reported as a corrupt miss" >&2
    exit 1
fi

echo "cache canary passed: digest $COLD_DIGEST stable cold, warm and after corruption"
