#!/usr/bin/env bash
# Runs the pipeline_throughput and functional_ffwd benchmarks and writes a
# JSON snapshot of simulated-instructions-per-second for every machine ×
# classifier point, the 2-way SMT co-run points (pipeline_throughput/smt/*),
# and the functional fast-forward points (functional_ffwd/*) that bound the
# sampled-simulation speed-up.
#
# Usage:
#   scripts/bench_snapshot.sh [OUTPUT.json]
#
# The in-tree criterion stand-in is already "quick mode": each benchmark is
# calibrated to a ~300 ms sampling budget, so a full snapshot takes well
# under a minute. CI runs this on every push and uploads the snapshot as a
# workflow artifact, seeding the bench trajectory; the committed
# BENCH_pipeline.json additionally carries the pre-optimisation baseline for
# before/after comparisons.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_pipeline.json.new}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# `pipefail` already propagates a bench failure through the pipe; the
# explicit PIPESTATUS check keeps that guarantee even if someone sources this
# script or trims the `set` line, and names the failing stage in the error.
for BENCH in pipeline_throughput functional_ffwd; do
    cargo bench --bench "$BENCH" | tee -a "$RAW" >&2 || {
        status=("${PIPESTATUS[@]}")
        echo "bench_snapshot: cargo bench $BENCH exited ${status[0]} (tee ${status[1]})" >&2
        # Propagate cargo's code when it failed; if only tee failed, still
        # exit nonzero (the snapshot was not captured).
        [[ "${status[0]:-1}" != "0" ]] && exit "${status[0]}"
        exit 1
    }
done

COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

# Lines look like:
#   pipeline_throughput/machine/baseline_iq64:  9284.046 µs/iter (30 iters)  646270 elem/s
awk -v commit="$COMMIT" '
    BEGIN {
        n = 0
    }
    /elem\/s/ {
        name = $1
        sub(/:$/, "", name)
        us = $2
        rate = $(NF - 1)
        names[n] = name
        uss[n] = us
        rates[n] = rate
        n++
    }
    END {
        if (n == 0) {
            print "bench_snapshot: no \"elem/s\" lines in bench output — format drift?" > "/dev/stderr"
            exit 1
        }
        printf "{\n"
        printf "  \"bench\": \"pipeline_throughput\",\n"
        printf "  \"unit\": \"simulated_insts_per_sec\",\n"
        printf "  \"commit\": \"%s\",\n", commit
        printf "  \"results\": {\n"
        for (i = 0; i < n; i++) {
            comma = (i < n - 1) ? "," : ""
            printf "    \"%s\": {\"insts_per_sec\": %s, \"us_per_iter\": %s}%s\n", names[i], rates[i], uss[i], comma
        }
        printf "  }\n"
        printf "}\n"
    }
' "$RAW" > "$OUT"

# The SMT co-run point must be part of every snapshot: losing it would
# silently drop aggregate-SMT-throughput tracking from the trajectory.
if ! grep -q '"pipeline_throughput/smt/co_run_' "$OUT"; then
    echo "bench_snapshot: no SMT co-run point in the snapshot — bench group renamed or dropped?" >&2
    exit 1
fi

# Likewise the functional fast-forward points: they bound the sampled
# simulation speed-up and gate the decode-once interpreter.
if ! grep -q '"functional_ffwd/decoded/' "$OUT"; then
    echo "bench_snapshot: no functional fast-forward point in the snapshot — bench group renamed or dropped?" >&2
    exit 1
fi

echo "wrote $OUT" >&2
