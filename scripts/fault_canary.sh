#!/usr/bin/env bash
# Fault-tolerance canary: proves the sampled runner's recovery machinery
# works end to end on the real binary, not just in unit tests.
#
#   1. A fault-free `experiments sample --quick` run with journaling on must
#      exit 0 and report journaling overhead <= 5% of the sampled wall-clock
#      (the fault-tolerant path must stay effectively free when nothing
#      fails).
#   2. The same run with an injected worker panic (`--inject panic@0.0`,
#      killing the first attempt of interval 0 of every point) must still
#      exit 0 — the default retry policy absorbs the fault — and print the
#      *same* result digest as the fault-free run: recovery is bit-exact,
#      not approximate.
#   3. A resume over the journals written in step 1 must replay intervals
#      (no re-simulation) and again reproduce the digest.
#
# The digest is the report's `result digest: 0x...` line — an FNV-1a over
# every measured interval's (workload, config, index, instructions, cycles).
#
# Usage: scripts/fault_canary.sh [OUT_DIR]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-fault-canary}"
BIN=(cargo run --release -q -p ltp --bin experiments --)
rm -rf "$OUT"
mkdir -p "$OUT"

digest_of() {
    # digest_of REPORT -> the hex digest, failing loudly if the line is gone
    awk '/^result digest:/ { print $3; found = 1 }
         END { if (!found) { print "no result digest line in " ARGV[1] > "/dev/stderr"; exit 1 } }' "$1"
}

echo "== fault canary: fault-free journaled run"
"${BIN[@]}" sample --quick --out "$OUT/clean" --journal "$OUT/journals"

# Journaling overhead gate: the breakdown line prints
#   ... journaling <S>s (<P>% of sampled wall-clock)
# The cost being gated is deterministic work, but the measurement rides on a
# shared CI host — take the best of up to three runs so a load spike on the
# box cannot fail the gate (a real regression fails all three).
GATE_OK=""
for attempt in 1 2 3; do
    if [[ "$attempt" -gt 1 ]]; then
        echo "canary: overhead gate retry $attempt"
        "${BIN[@]}" sample --quick --out "$OUT/clean" --journal "$OUT/journals"
    fi
    PCT="$(sed -n 's/.*journaling [0-9.]*s (\([0-9.]*\)% of sampled wall-clock).*/\1/p' "$OUT/clean/sample.txt")"
    if [[ -z "$PCT" ]]; then
        echo "canary: no journaling overhead in the breakdown line — report drift?" >&2
        exit 1
    fi
    echo "canary: journaling overhead ${PCT}% of sampled wall-clock"
    if awk -v pct="$PCT" 'BEGIN { exit !(pct + 0 <= 5.0) }'; then
        GATE_OK=1
        break
    fi
done
if [[ -z "$GATE_OK" ]]; then
    echo "canary: journaling overhead exceeds 5% on the fault-free path in 3 runs" >&2
    exit 1
fi
CLEAN_DIGEST="$(digest_of "$OUT/clean/sample.txt")"

echo "== fault canary: injected worker panic (recovered by retry)"
"${BIN[@]}" sample --quick --out "$OUT/faulted" --inject panic@0.0
FAULT_DIGEST="$(digest_of "$OUT/faulted/sample.txt")"
if [[ "$FAULT_DIGEST" != "$CLEAN_DIGEST" ]]; then
    echo "canary: fault-recovered digest $FAULT_DIGEST != fault-free digest $CLEAN_DIGEST" >&2
    exit 1
fi
if grep -q "DEGRADED RUN" "$OUT/faulted/sample.txt"; then
    echo "canary: a single worker panic must be absorbed, not degrade the run" >&2
    exit 1
fi

echo "== fault canary: resume from the journals of the fault-free run"
"${BIN[@]}" sample --quick --out "$OUT/resumed" --resume "$OUT/journals"
RESUME_DIGEST="$(digest_of "$OUT/resumed/sample.txt")"
if [[ "$RESUME_DIGEST" != "$CLEAN_DIGEST" ]]; then
    echo "canary: resumed digest $RESUME_DIGEST != fault-free digest $CLEAN_DIGEST" >&2
    exit 1
fi
if ! grep -q "^resume: " "$OUT/resumed/sample.txt"; then
    echo "canary: resumed run did not report replayed intervals" >&2
    exit 1
fi

echo "fault canary passed: digest $CLEAN_DIGEST stable across fault injection and resume"
