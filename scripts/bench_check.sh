#!/usr/bin/env bash
# Bench regression gate: compares a fresh bench snapshot (produced by
# scripts/bench_snapshot.sh) against the committed BENCH_pipeline.json
# "current", "smt" and "functional" sections, and fails if any tracked point
# regressed by more than the tolerance (default 15 %).
#
# Usage:
#   scripts/bench_check.sh FRESH.json [TOLERANCE_PERCENT]
#   scripts/bench_check.sh --self-test
#
# Absolute insts/sec numbers are machine-dependent, so the gate normalizes by
# the median fresh/committed ratio across all shared points: a uniformly
# slower machine (CI runner vs the dev box) shifts every ratio equally and
# passes, while a genuine single-point regression falls >TOL% below the
# median ratio and fails. (A regression that slows *every* point uniformly is
# indistinguishable from a slow machine and is not caught here — that is what
# refreshing the committed snapshot per optimisation PR is for.)
#
# --self-test injects a synthetic >15 % single-point regression into a copy
# of the committed snapshot and asserts the gate fails on it (and passes on
# an un-tampered scaled copy), so CI proves the gate actually gates.
set -euo pipefail

cd "$(dirname "$0")/.."
BASELINE="BENCH_pipeline.json"

check() {
    # check FRESH TOLERANCE -> exit 1 on regression
    python3 - "$BASELINE" "$1" "$2" <<'PY'
import json, statistics, sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    committed = json.load(f)
with open(fresh_path) as f:
    fresh = json.load(f)

tracked = {}
for section in ("current", "smt", "functional"):
    for name, point in committed.get(section, {}).get("results", {}).items():
        tracked[name] = float(point["insts_per_sec"])

fresh_results = fresh.get("results", {})
shared = {
    name: (committed_rate, float(fresh_results[name]["insts_per_sec"]))
    for name, committed_rate in tracked.items()
    if name in fresh_results
}
if len(shared) < 3:
    print(
        f"bench_check: only {len(shared)} tracked points shared between "
        f"{baseline_path} and {fresh_path} — bench renamed or snapshot broken?",
        file=sys.stderr,
    )
    sys.exit(1)

ratios = {name: fresh_rate / committed_rate for name, (committed_rate, fresh_rate) in shared.items()}
scale = statistics.median(ratios.values())
floor = scale * (1.0 - tol / 100.0)

print(f"bench_check: {len(shared)} tracked points, machine scale {scale:.3f}, "
      f"tolerance {tol:.0f}% -> per-point floor {floor:.3f}")
failed = []
for name in sorted(ratios):
    committed_rate, fresh_rate = shared[name]
    ratio = ratios[name]
    verdict = "ok" if ratio >= floor else "REGRESSED"
    print(f"  {name}: committed {committed_rate:.0f}, fresh {fresh_rate:.0f}, "
          f"ratio {ratio:.3f} [{verdict}]")
    if ratio < floor:
        failed.append(name)

missing = sorted(set(tracked) - set(fresh_results))
if missing:
    print(f"bench_check: tracked points missing from the fresh snapshot: "
          f"{', '.join(missing)}", file=sys.stderr)
    failed.extend(missing)

if failed:
    print(f"bench_check: FAIL — {len(failed)} point(s) regressed beyond "
          f"{tol:.0f}%: {', '.join(failed)}", file=sys.stderr)
    sys.exit(1)
print("bench_check: PASS")
PY
}

self_test() {
    local tmp_ok tmp_bad
    tmp_ok="$(mktemp)"
    tmp_bad="$(mktemp)"
    trap 'rm -f "$tmp_ok" "$tmp_bad"' RETURN

    # A uniformly 2x-slower machine must PASS...
    python3 - "$BASELINE" "$tmp_ok" 1.0 <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    committed = json.load(f)
results = {}
for section in ("current", "smt", "functional"):
    for name, point in committed.get(section, {}).get("results", {}).items():
        results[name] = {"insts_per_sec": float(point["insts_per_sec"]) / 2.0}
json.dump({"bench": "pipeline_throughput", "results": results}, open(sys.argv[2], "w"))
PY
    if ! check "$tmp_ok" 15 >/dev/null; then
        echo "bench_check self-test: FAILED (uniform slowdown was rejected)" >&2
        return 1
    fi

    # ... while the same snapshot with one point slowed a further 20% must FAIL.
    python3 - "$tmp_ok" "$tmp_bad" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
victim = sorted(snap["results"])[0]
snap["results"][victim]["insts_per_sec"] *= 0.80
json.dump(snap, open(sys.argv[2], "w"))
PY
    if check "$tmp_bad" 15 >/dev/null 2>&1; then
        echo "bench_check self-test: FAILED (injected 20% regression passed the gate)" >&2
        return 1
    fi
    echo "bench_check self-test: PASS (uniform slowdown accepted, injected regression rejected)"
}

if [[ "${1:-}" == "--self-test" ]]; then
    self_test
    exit $?
fi

FRESH="${1:?usage: scripts/bench_check.sh FRESH.json [TOLERANCE_PERCENT] | --self-test}"
TOL="${2:-15}"
check "$FRESH" "$TOL"
