#!/usr/bin/env bash
# Simulation-service canary: proves the HTTP job server is a faithful
# transport over the sampled runner, end to end on the real binary.
#
#   1. A CLI `experiments sample --quick` run pins the reference result
#      digest.
#   2. `experiments serve` is started with a shared checkpoint cache and a
#      journal directory. Two identical quick jobs submitted over HTTP must
#      both finish `done` with exactly the CLI digest (transport
#      bit-identity), and the second must be served from the cache the first
#      populated (>= 1 cache hit in /metrics).
#   3. A third identical job is killed mid-run (kill -9 of the whole server)
#      and the server restarted on the same journal directory with
#      `--resume`. The resumed job must complete with, again, exactly the
#      CLI digest: journal replay is bit-exact across process death.
#
# Usage: scripts/service_canary.sh [OUT_DIR]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-service-canary}"
# Run the binary directly (not via `cargo run`): kill -9 must hit the server
# process itself, not a cargo wrapper that would orphan it.
cargo build --release -q -p ltp --bin experiments
BIN=(target/release/experiments)
rm -rf "$OUT"
mkdir -p "$OUT"

SERVER_PID=""
cleanup() {
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -9 "$SERVER_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

digest_of() {
    # digest_of REPORT -> the hex digest, failing loudly if the line is gone
    awk '/^result digest:/ { print $3; found = 1 }
         END { if (!found) { print "no result digest line in " ARGV[1] > "/dev/stderr"; exit 1 } }' "$1"
}

start_server() {
    # start_server LOG [EXTRA_FLAGS...] -> sets SERVER_PID and BASE_URL
    local log="$1"
    shift
    "${BIN[@]}" serve --bind 127.0.0.1:0 --workers 2 \
        --cache "$OUT/cache" "$@" >"$log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 300); do
        if ! kill -0 "$SERVER_PID" 2>/dev/null; then
            echo "canary: server died during startup; log:" >&2
            cat "$log" >&2
            exit 1
        fi
        local addr
        addr="$(sed -n 's#^listening on http://##p' "$log")"
        if [[ -n "$addr" ]]; then
            BASE_URL="http://$addr"
            return
        fi
        sleep 0.2
    done
    echo "canary: server did not report its address within 60s" >&2
    exit 1
}

submit_job() {
    # submit_job -> job id, via POST /jobs
    local resp
    resp="$(curl -sf -X POST -H 'Content-Type: application/json' \
        -d '{"experiment":"sample","quick":true}' "$BASE_URL/jobs")"
    local id
    id="$(printf '%s' "$resp" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')"
    if [[ -z "$id" ]]; then
        echo "canary: submit returned no job id: $resp" >&2
        exit 1
    fi
    printf '%s' "$id"
}

job_status() {
    curl -sf "$BASE_URL/jobs/$1"
}

job_field() {
    # job_field STATUS_JSON FIELD -> string field value
    printf '%s' "$1" | sed -n "s/.*\"$2\":\"\([^\"]*\)\".*/\1/p"
}

wait_job_done() {
    # wait_job_done ID -> final status JSON once terminal (done expected)
    local id="$1"
    for _ in $(seq 1 1800); do
        local status state
        status="$(job_status "$id")"
        state="$(job_field "$status" state)"
        case "$state" in
            done) printf '%s' "$status"; return ;;
            partial|failed|cancelled)
                echo "canary: job $id ended $state: $status" >&2
                exit 1 ;;
        esac
        sleep 0.2
    done
    echo "canary: job $id did not finish within 6 minutes" >&2
    exit 1
}

echo "== service canary: CLI reference digest"
"${BIN[@]}" sample --quick --out "$OUT/cli"
CLI_DIGEST="$(digest_of "$OUT/cli/sample.txt")"
echo "canary: CLI digest $CLI_DIGEST"

echo "== service canary: two identical jobs over HTTP (cache sharing)"
start_server "$OUT/server1.log" --journal "$OUT/journal"

ID1="$(submit_job)"
STATUS1="$(wait_job_done "$ID1")"
DIGEST1="$(job_field "$STATUS1" digest)"
if [[ "$DIGEST1" != "$CLI_DIGEST" ]]; then
    echo "canary: job $ID1 digest $DIGEST1 != CLI digest $CLI_DIGEST" >&2
    exit 1
fi

ID2="$(submit_job)"
STATUS2="$(wait_job_done "$ID2")"
DIGEST2="$(job_field "$STATUS2" digest)"
if [[ "$DIGEST2" != "$CLI_DIGEST" ]]; then
    echo "canary: job $ID2 digest $DIGEST2 != CLI digest $CLI_DIGEST" >&2
    exit 1
fi

METRICS="$(curl -sf "$BASE_URL/metrics")"
HITS="$(printf '%s' "$METRICS" | sed -n 's/.*"cache":{"hits":\([0-9]*\).*/\1/p')"
if [[ -z "$HITS" || "$HITS" -lt 1 ]]; then
    echo "canary: expected >= 1 cache hit after the second job; metrics: $METRICS" >&2
    exit 1
fi
echo "canary: both jobs match the CLI digest, $HITS cache hits"

echo "== service canary: kill -9 mid-job, resume on restart"
ID3="$(submit_job)"
# Wait until the job has measured at least one interval, so the journals
# genuinely hold partial state when the server dies.
STARTED=""
for _ in $(seq 1 600); do
    STATUS3="$(job_status "$ID3")"
    COMPLETED="$(printf '%s' "$STATUS3" | sed -n 's/.*"completed":\([0-9]*\).*/\1/p')"
    STATE3="$(job_field "$STATUS3" state)"
    if [[ "$STATE3" == "done" ]]; then
        # Too fast to interrupt on this machine — the resume path is still
        # exercised below (resuming a completed journal replays it).
        STARTED=done
        break
    fi
    if [[ -n "$COMPLETED" && "$COMPLETED" -ge 1 ]]; then
        STARTED=midrun
        break
    fi
    sleep 0.1
done
if [[ -z "$STARTED" ]]; then
    echo "canary: job $ID3 never started sampling" >&2
    exit 1
fi
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
# Drop the completion marker if the job outran the kill, so the restart
# resumes it either way (a fully-journaled job replays every interval).
rm -f "$OUT/journal/$ID3.done"
echo "canary: server killed ($STARTED); restarting with --resume"

start_server "$OUT/server2.log" --resume "$OUT/journal"
STATUS3="$(wait_job_done "$ID3")"
DIGEST3="$(job_field "$STATUS3" digest)"
if [[ "$DIGEST3" != "$CLI_DIGEST" ]]; then
    echo "canary: resumed job digest $DIGEST3 != CLI digest $CLI_DIGEST" >&2
    exit 1
fi

echo "service canary passed: digest $CLI_DIGEST stable across HTTP transport, cache sharing and kill-9 resume"
