//! Command-line driver regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [EXPERIMENT ...] [--quick] [--insts N] [--seed S] [--out DIR]
//!             [--cache DIR] [--journal DIR] [--resume DIR] [--inject SPEC]
//!             [--retries N]
//! experiments serve [--bind ADDR] [--workers N] [--max-jobs N]
//!             [--cache DIR] [--journal DIR] [--resume DIR]
//!
//! EXPERIMENT: all | table1 | fig1 | fig2 | fig6 | fig7 | fig10 | fig11 | uit
//!           | ablation | fig_smt | sample
//! ```
//!
//! Reports are printed to stdout and written to `<out>/<experiment>.txt`
//! (default `results/`). Run with `--release`; the debug build is an order of
//! magnitude slower.
//!
//! `--cache DIR` opens a content-addressed checkpoint cache shared by every
//! experiment of the invocation (and by later invocations pointing at the
//! same directory): sweeps serve their cache-warming from it and the sampled
//! runner its functional fast-forward warm states, so repeated runs pay each
//! functional warm-up once per distinct (trace, warm configuration). The
//! reports gain a cache-stats line when it is active.
//!
//! The fault-tolerance flags apply to the `sample` experiment: `--journal DIR`
//! appends completed intervals to per-point journals under `DIR`, `--resume
//! DIR` replays matching journals (and implies journaling to the same
//! directory), `--retries N` bounds attempts per interval, and `--inject
//! SPEC` (or the `LTP_FAULT_PLAN` environment variable) injects a
//! deterministic fault plan — see `ltp_experiments::fault::FaultPlan::parse`
//! for the grammar.
//!
//! `serve` starts the `ltp-service` HTTP job server on `--bind` (default
//! `127.0.0.1:8080`) and runs until killed. `--workers N` sizes the
//! cross-job interval-execution permit pool *and* exports `LTP_THREADS=N` so
//! every in-process worker pool agrees with it; `--max-jobs` caps concurrent
//! jobs (submissions beyond it get HTTP 429); `--cache`/`--journal` share the
//! CLI's checkpoint-cache and journal formats, and `--resume DIR` re-submits
//! jobs a killed server left unfinished under `DIR`, replaying their
//! journals bit-identically.
//!
//! Exit codes: 0 success, 2 usage/configuration error, 3 a simulation failed
//! outright, 4 everything ran but at least one sampled point is partial
//! (lost intervals, flagged in the report).

use ltp_experiments::fault::FaultPlan;
use ltp_experiments::sampled::{SampleRunControl, SampleRunStatus};
use ltp_experiments::{sampled, CheckpointCache, Experiment, ExperimentCtx, RunOptions};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Exit code for usage and configuration errors.
const EXIT_CONFIG: u8 = 2;
/// Exit code when a simulation failed outright.
const EXIT_SIM_ERROR: u8 = 3;
/// Exit code when every experiment ran but a sampled point is partial.
const EXIT_PARTIAL: u8 = 4;

fn main() -> ExitCode {
    match run() {
        Ok(status) => {
            if status.error_points > 0 {
                ExitCode::from(EXIT_SIM_ERROR)
            } else if status.partial_points > 0 {
                ExitCode::from(EXIT_PARTIAL)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(CliError { message, code }) => {
            eprintln!("error: {message}");
            if code == EXIT_CONFIG {
                eprintln!("{USAGE}");
            }
            ExitCode::from(code)
        }
    }
}

/// A fatal CLI failure with the exit code it maps to.
struct CliError {
    message: String,
    code: u8,
}

impl CliError {
    fn config(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: EXIT_CONFIG,
        }
    }

    fn io(what: &str, path: &str, e: &std::io::Error) -> CliError {
        CliError {
            message: format!("{what} `{path}`: {e}"),
            code: EXIT_CONFIG,
        }
    }
}

const USAGE: &str = "usage: experiments \
[all|table1|fig1|fig2|fig6|fig7|fig10|fig11|uit|ablation|fig_smt|sample ...] \
[--quick] [--insts N] [--seed S] [--out DIR] [--cache DIR] \
[--journal DIR] [--resume DIR] [--inject SPEC] [--retries N]\n\
       experiments serve [--bind ADDR] [--workers N] [--max-jobs N] \
[--cache DIR] [--journal DIR] [--resume DIR]";

fn run() -> Result<SampleRunStatus, CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        return serve(&args[1..]).map(|()| SampleRunStatus::default());
    }
    let mut experiments: Vec<Experiment> = Vec::new();
    let mut opts = RunOptions::default();
    let mut out_dir = String::from("results");
    let mut cache_dir: Option<PathBuf> = None;
    let mut control = SampleRunControl::default();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts = RunOptions::quick(),
            "--insts" => {
                i += 1;
                opts.detail_insts = parse_flag_value(&args, i, "--insts", "a number")?;
            }
            "--seed" => {
                i += 1;
                opts.seed = parse_flag_value(&args, i, "--seed", "a number")?;
            }
            "--out" => {
                i += 1;
                out_dir = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| CliError::config("--out needs a path"))?;
            }
            "--cache" => {
                i += 1;
                let dir = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| CliError::config("--cache needs a directory"))?;
                cache_dir = Some(PathBuf::from(dir));
            }
            "--journal" => {
                i += 1;
                let dir = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| CliError::config("--journal needs a directory"))?;
                control.journal_dir = Some(PathBuf::from(dir));
            }
            "--resume" => {
                i += 1;
                let dir = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| CliError::config("--resume needs a directory"))?;
                control.journal_dir = Some(PathBuf::from(dir));
                control.resume = true;
            }
            "--inject" => {
                i += 1;
                let spec = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| CliError::config("--inject needs a fault spec"))?;
                control.faults = FaultPlan::parse(&spec)
                    .map_err(|e| CliError::config(format!("bad --inject spec: {e}")))?;
            }
            "--retries" => {
                i += 1;
                let n: u32 = parse_flag_value(&args, i, "--retries", "a number")?;
                let mut policy = ltp_experiments::parallel::RetryPolicy::default_sampled();
                policy.max_attempts = n.max(1);
                control.retry = Some(policy);
            }
            "all" => experiments.extend(Experiment::ALL),
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(SampleRunStatus::default());
            }
            name => match Experiment::from_name(name) {
                Some(e) => experiments.push(e),
                None => return Err(CliError::config(format!("unknown experiment '{name}'"))),
            },
        }
        i += 1;
    }
    if control.faults.is_empty() {
        if let Ok(spec) = std::env::var("LTP_FAULT_PLAN") {
            control.faults = FaultPlan::parse(&spec)
                .map_err(|e| CliError::config(format!("bad LTP_FAULT_PLAN: {e}")))?;
        }
    }
    if experiments.is_empty() {
        experiments.extend(Experiment::ALL);
    }

    std::fs::create_dir_all(&out_dir)
        .map_err(|e| CliError::io("cannot create the output directory", &out_dir, &e))?;

    // One cache instance is shared by every experiment of the invocation, so
    // e.g. `experiments fig1 uit --cache DIR` warms each workload once.
    let cache: Option<std::sync::Arc<CheckpointCache>> = match &cache_dir {
        Some(dir) => {
            let c = CheckpointCache::open(dir).map_err(|e| {
                CliError::io(
                    "cannot open the checkpoint cache",
                    &dir.display().to_string(),
                    &e,
                )
            })?;
            Some(std::sync::Arc::new(c))
        }
        None => None,
    };
    control.cache_dir = cache_dir;

    let mut status = SampleRunStatus::default();
    for experiment in experiments {
        let started = std::time::Instant::now();
        eprintln!("== running {} ...", experiment.name());
        // The `sample` experiment carries the fault-tolerance controls and
        // reports how degraded the run was; everything else runs plainly.
        let report = if experiment == Experiment::Sample {
            let (report, run_status) = sampled::run_with_control(&opts, &control);
            status.partial_points += run_status.partial_points;
            status.error_points += run_status.error_points;
            report
        } else {
            experiment.run(&ExperimentCtx::new(&opts).with_cache(cache.as_ref()))
        };
        let elapsed = started.elapsed();
        let rendered = report.render_text();
        println!("{rendered}");
        println!(
            "[{} finished in {:.1}s]\n",
            experiment.name(),
            elapsed.as_secs_f64()
        );
        let path = format!("{out_dir}/{}.txt", experiment.name());
        let mut file = std::fs::File::create(&path)
            .map_err(|e| CliError::io("cannot create the report file", &path, &e))?;
        file.write_all(rendered.as_bytes())
            .map_err(|e| CliError::io("cannot write the report file", &path, &e))?;
    }
    Ok(status)
}

/// The `serve` subcommand: parse flags, start the job server, run until
/// killed.
fn serve(args: &[String]) -> Result<(), CliError> {
    let mut config = ltp_service::ServiceConfig {
        bind: "127.0.0.1:8080".to_string(),
        ..ltp_service::ServiceConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bind" => {
                i += 1;
                config.bind = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| CliError::config("--bind needs host:port"))?;
            }
            "--workers" => {
                i += 1;
                let n: usize = parse_flag_value(args, i, "--workers", "a number")?;
                if n == 0 {
                    return Err(CliError::config("--workers must be at least 1"));
                }
                config.workers = n;
                // Export the worker budget so every in-process pool
                // (`worker_threads` consults LTP_THREADS) agrees with the
                // governor's permit count. Done here, before any thread is
                // spawned.
                std::env::set_var("LTP_THREADS", n.to_string());
            }
            "--max-jobs" => {
                i += 1;
                let n: usize = parse_flag_value(args, i, "--max-jobs", "a number")?;
                if n == 0 {
                    return Err(CliError::config("--max-jobs must be at least 1"));
                }
                config.max_jobs = n;
            }
            "--cache" => {
                i += 1;
                let dir = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| CliError::config("--cache needs a directory"))?;
                config.cache_dir = Some(PathBuf::from(dir));
            }
            "--journal" => {
                i += 1;
                let dir = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| CliError::config("--journal needs a directory"))?;
                config.journal_dir = Some(PathBuf::from(dir));
            }
            "--resume" => {
                i += 1;
                let dir = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| CliError::config("--resume needs a directory"))?;
                config.journal_dir = Some(PathBuf::from(dir));
                config.resume = true;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            flag => return Err(CliError::config(format!("unknown serve flag '{flag}'"))),
        }
        i += 1;
    }

    let server = ltp_service::Server::start(&config).map_err(|e| {
        if e.kind() == std::io::ErrorKind::AddrInUse {
            CliError::config(format!(
                "cannot bind `{}`: the port is already in use \
                 (is another serve instance running? pick a different --bind)",
                config.bind
            ))
        } else {
            CliError::config(format!("cannot bind `{}`: {e}", config.bind))
        }
    })?;
    println!("listening on http://{}", server.addr());
    println!(
        "workers: {} permits, admission cap: {} jobs, cache: {}, journal: {}",
        server.registry().governor().permits(),
        config.max_jobs,
        config
            .cache_dir
            .as_deref()
            .map_or_else(|| "off".to_string(), |d| d.display().to_string()),
        config
            .journal_dir
            .as_deref()
            .map_or_else(|| "off".to_string(), |d| d.display().to_string()),
    );
    std::io::stdout().flush().ok();
    // The accept loop lives on its own thread; the server runs until the
    // process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Parses the value following a flag, with a usage error naming the flag.
fn parse_flag_value<T: std::str::FromStr>(
    args: &[String],
    i: usize,
    flag: &str,
    what: &str,
) -> Result<T, CliError> {
    args.get(i)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CliError::config(format!("{flag} needs {what}")))
}
