//! Umbrella crate for the LTP (Long Term Parking, MICRO 2015) reproduction.
//!
//! This crate hosts the workspace-level integration tests and examples and
//! re-exports every sub-crate so downstream users can depend on a single
//! package:
//!
//! - [`isa`] — instruction set, registers, instruction streams
//! - [`core`] — the LTP unit: UIT, parking queue, tickets, RAT extension
//! - [`mem`] — cache hierarchy, MSHRs, DRAM, prefetcher
//! - [`pipeline`] — the out-of-order core model
//! - [`stats`] — histograms, occupancy tracking, tables
//! - [`workloads`] — synthetic kernels standing in for SPEC CPU2006
//! - [`energy`] — the energy model behind the paper's ED comparisons
//! - [`experiments`] — figure/table harnesses reproducing paper results

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ltp_core as core;
pub use ltp_energy as energy;
pub use ltp_experiments as experiments;
pub use ltp_isa as isa;
pub use ltp_mem as mem;
pub use ltp_pipeline as pipeline;
pub use ltp_stats as stats;
pub use ltp_workloads as workloads;
