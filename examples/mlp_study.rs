//! A miniature version of the paper's evaluation flow: classify the workload
//! suite into MLP-sensitive and MLP-insensitive groups with the §4.1
//! criterion, then compare the baseline, the naively shrunk core and the LTP
//! design on both groups.
//!
//! ```text
//! cargo run --release --example mlp_study
//! ```

use ltp_experiments::{run_point, MlpGrouping, RunOptions};
use ltp_pipeline::PipelineConfig;
use ltp_stats::MeanAccumulator;
use ltp_workloads::WorkloadKind;

fn group_cpi(group: &[WorkloadKind], cfg: PipelineConfig, opts: &RunOptions) -> f64 {
    let mut acc = MeanAccumulator::new();
    for &kind in group {
        acc.add(run_point(kind, cfg, opts).cpi());
    }
    acc.mean()
}

fn main() {
    let opts = RunOptions {
        detail_insts: 15_000,
        warm_insts: 10_000,
        seed: 99,
    };

    println!("Deriving the MLP grouping with the paper's criterion (§4.1)...\n");
    let grouping = MlpGrouping::derive(&opts);
    println!(
        "MLP-sensitive:   {}",
        grouping
            .sensitive
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "MLP-insensitive: {}\n",
        grouping
            .insensitive
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let configs = [
        ("baseline IQ64/RF128", PipelineConfig::micro2015_baseline()),
        ("small    IQ32/RF96", PipelineConfig::small_no_ltp()),
        ("LTP      IQ32/RF96+LTP", PipelineConfig::ltp_proposed()),
    ];

    for (label, group) in [
        ("MLP-sensitive", &grouping.sensitive),
        ("MLP-insensitive", &grouping.insensitive),
    ] {
        if group.is_empty() {
            continue;
        }
        println!("--- {label} group ---");
        let base = group_cpi(group, configs[0].1, &opts);
        for (name, cfg) in configs {
            let cpi = group_cpi(group, cfg, &opts);
            println!(
                "  {:<24} CPI {:>6.3}   vs baseline {:+.1}%",
                name,
                cpi,
                (base / cpi - 1.0) * 100.0
            );
        }
        println!();
    }

    println!(
        "The LTP design should sit close to the baseline on both groups, while the\n\
         naively shrunk core loses noticeably more on the MLP-sensitive group —\n\
         the paper's headline result."
    );
}
