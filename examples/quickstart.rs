//! Quickstart: simulate one workload on the baseline core and on the LTP
//! design, and compare CPI, MLP and LTP activity.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ltp_experiments::SimBuilder;
use ltp_pipeline::{PipelineConfig, RunResult};
use ltp_workloads::WorkloadKind;

fn simulate(label: &str, cfg: PipelineConfig, kind: WorkloadKind, insts: u64) -> RunResult {
    // Warm the caches with a prefix of the workload, then run a detailed
    // simulation of `insts` instructions.
    let result = SimBuilder::new(cfg, kind)
        .seed(1)
        .warm_insts(20_000)
        .detail_insts(insts)
        .run()
        .expect("simulation deadlocked");

    println!("--- {label} ---");
    println!("  instructions      : {}", result.instructions);
    println!("  cycles            : {}", result.cycles);
    println!("  CPI               : {:.3}", result.cpi());
    println!(
        "  outstanding misses: {:.2}",
        result.avg_outstanding_misses()
    );
    println!("  avg IQ occupancy  : {:.1}", result.occupancy.iq.mean());
    println!("  avg regs in use   : {:.1}", result.occupancy.regs.mean());
    println!(
        "  parked in LTP     : {} ({:.0}% of instructions)",
        result.ltp.total_parked(),
        result.ltp.park_fraction() * 100.0
    );
    println!();
    result
}

fn main() {
    let kind = WorkloadKind::IndirectStream;
    let insts = 30_000;

    println!("Long Term Parking quickstart — workload: {kind}\n");

    // Table 1 baseline: IQ 64, 128 registers, no LTP.
    let baseline = simulate(
        "baseline  (IQ 64, RF 128, no LTP)",
        PipelineConfig::micro2015_baseline(),
        kind,
        insts,
    );

    // Just shrinking the structures loses performance...
    let small = simulate(
        "small     (IQ 32, RF 96,  no LTP)",
        PipelineConfig::small_no_ltp(),
        kind,
        insts,
    );

    // ...while the LTP design recovers most of it.
    let ltp = simulate(
        "LTP design (IQ 32, RF 96, 128-entry 4-port LTP)",
        PipelineConfig::ltp_proposed(),
        kind,
        insts,
    );

    println!("summary (performance relative to the baseline):");
    println!(
        "  small without LTP : {:+.1}%",
        small.speedup_over_percent(&baseline)
    );
    println!(
        "  small with LTP    : {:+.1}%",
        ltp.speedup_over_percent(&baseline)
    );
}
