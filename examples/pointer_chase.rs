//! Pointer chasing: the case LTP cannot accelerate.
//!
//! Pointer-chasing loads are Urgent (they feed the next miss) but Non-Ready
//! (their address comes from the previous miss), so parking cannot shorten
//! the serial chain of DRAM accesses. This example measures how little the
//! large window or the LTP design changes performance on such code, in
//! contrast to the indirect-access kernel.
//!
//! ```text
//! cargo run --release --example pointer_chase
//! ```

use ltp_experiments::SimBuilder;
use ltp_pipeline::PipelineConfig;
use ltp_workloads::WorkloadKind;

fn run(cfg: PipelineConfig, kind: WorkloadKind, insts: u64) -> (f64, f64) {
    let r = SimBuilder::new(cfg, kind)
        .seed(1)
        .warm_insts(10_000)
        .detail_insts(insts)
        .run()
        .expect("simulation deadlocked");
    (r.cpi(), r.avg_outstanding_misses())
}

fn main() {
    let insts = 20_000;
    println!("How much does the instruction window matter?\n");
    println!(
        "{:<18} {:>14} {:>14} {:>16}",
        "workload", "CPI @ IQ 32", "CPI @ IQ 256", "CPI @ IQ32+LTP"
    );

    for kind in [WorkloadKind::PointerChase, WorkloadKind::IndirectStream] {
        let (cpi_small, _) = run(
            PipelineConfig::limit_study_unlimited().with_iq(32),
            kind,
            insts,
        );
        let (cpi_large, _) = run(
            PipelineConfig::limit_study_unlimited().with_iq(256),
            kind,
            insts,
        );
        let (cpi_ltp, _) = run(PipelineConfig::ltp_proposed(), kind, insts);
        println!(
            "{:<18} {:>14.2} {:>14.2} {:>16.2}",
            kind.name(),
            cpi_small,
            cpi_large,
            cpi_ltp
        );
    }

    println!(
        "\nThe pointer chaser barely changes: its misses form a serial chain, so no\n\
         amount of window (or parking) can overlap them. The indirect-access loop\n\
         improves substantially because independent misses exist and LTP keeps the\n\
         small IQ free for the instructions that expose them. This is the reason the\n\
         paper's proposed design parks only Non-Urgent instructions and does not try\n\
         to chase the Urgent + Non-Ready pointer loads (§4.3)."
    );
}
