//! The paper's running example (Figure 2 / Figure 3): the indirect-access
//! loop `d = B[A[j]]; C[i] = d + 5`.
//!
//! This example classifies the loop's instructions with the oracle analyser
//! and prints them next to the paper's classification, then shows how parking
//! the Non-Urgent instructions empties the IQ and increases memory-level
//! parallelism.
//!
//! ```text
//! cargo run --release --example indirect_access
//! ```

use ltp_core::{LtpConfig, LtpMode, OracleAnalysis};
use ltp_experiments::SimBuilder;
use ltp_mem::MemoryConfig;
use ltp_pipeline::PipelineConfig;
use ltp_workloads::{trace, WorkloadKind};

fn main() {
    // --- classification of one steady-state iteration -----------------------
    let t = trace(WorkloadKind::IndirectStream, 7, 11 * 64);
    let oracle = OracleAnalysis::default().analyze(&t, &MemoryConfig::limit_study());

    println!("Classification of the loop body (paper Figure 2):\n");
    println!("{:<4} {:<26} {:<8}", "inst", "operation", "class");
    let labels = ["A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K"];
    let base = 40 * 11; // a steady-state iteration
    for (offset, label) in labels.iter().enumerate() {
        let inst = &t[base + offset];
        let class = oracle.classify(inst.seq());
        println!(
            "{:<4} {:<26} {:<8}",
            label,
            inst.static_inst().to_string(),
            class.class().notation()
        );
    }

    // --- effect of parking on the IQ and on MLP ------------------------------
    let insts = 30_000u64;
    let kind = WorkloadKind::IndirectStream;

    // The detailed trace is generated with `seed + 1`; no cache warming, as
    // in the original study of this figure.
    let res_without = SimBuilder::new(PipelineConfig::limit_study_unlimited().with_iq(32), kind)
        .seed(1)
        .warm_insts(0)
        .detail_insts(insts)
        .run()
        .expect("simulation deadlocked");

    let cfg_with = PipelineConfig::limit_study_unlimited()
        .with_iq(32)
        .with_ltp(LtpConfig::ideal(LtpMode::NonUrgentOnly))
        .with_oracle(true);
    let res_with = SimBuilder::new(cfg_with, kind)
        .seed(1)
        .warm_insts(0)
        .detail_insts(insts)
        .run()
        .expect("simulation deadlocked");

    println!("\nEffect of parking the Non-Urgent instructions (paper Figure 3):\n");
    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>8}",
        "design", "CPI", "IQ occupancy", "LTP occupancy", "MLP"
    );
    println!(
        "{:<22} {:>10.3} {:>12.1} {:>14.1} {:>8.2}",
        "IQ 32, no LTP",
        res_without.cpi(),
        res_without.occupancy.iq.mean(),
        0.0,
        res_without.avg_outstanding_misses()
    );
    println!(
        "{:<22} {:>10.3} {:>12.1} {:>14.1} {:>8.2}",
        "IQ 32 + LTP (NU)",
        res_with.cpi(),
        res_with.occupancy.iq.mean(),
        res_with.occupancy.ltp.mean(),
        res_with.avg_outstanding_misses()
    );
    println!(
        "\nParking keeps the issue queue nearly empty, so the urgent address\n\
         computations and the missing loads of later iterations can enter and\n\
         expose more memory-level parallelism."
    );
}
