//! Cross-crate tests for the streaming sampled-simulation pipeline.
//!
//! Two properties anchor the decode-once / streaming rewrite:
//!
//! 1. **Byte-identity of the functional interpreter**: advancing the
//!    functional machine through a pre-decoded trace
//!    ([`FunctionalFastForward::advance_on`]) must produce checkpoints that
//!    are byte-for-byte identical to the per-instruction reference
//!    ([`FunctionalFastForward::feed_all`]) at every interval boundary, on a
//!    real workload trace and across configurations.
//! 2. **Schedule-independence of the sampled runner**: the streaming
//!    producer/consumer runner and the two-phase checkpoint-all-then-
//!    simulate-all reference must report identical per-interval
//!    measurements over arbitrary (and deliberately awkward) interval
//!    splits — lengths not divisible by the interval count, intervals
//!    shorter than the requested warm+measure window, single-interval
//!    traces.

use ltp_experiments::sampled::{SampleSpec, SampledRequest};
use ltp_isa::DecodedTrace;
use ltp_pipeline::{FunctionalFastForward, PipelineConfig};
use ltp_workloads::{trace, WorkloadKind};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// The decoded interpreter's checkpoints are byte-identical to the
/// per-instruction reference on every bundled workload kind, with uneven
/// advance chunks.
#[test]
fn decoded_checkpoints_byte_identical_across_workloads() {
    for kind in WorkloadKind::ALL {
        let detail = trace(kind, 2016, 30_000);
        let dec = DecodedTrace::from_insts(&detail);
        let cfg = PipelineConfig::ltp_proposed();

        let mut reference = FunctionalFastForward::new(cfg);
        let mut decoded = FunctionalFastForward::new(cfg);
        let mut pos = 0usize;
        for target in [1usize, 2_500, 11_111, 29_999, 30_000] {
            reference.feed_all(&detail[pos..target]);
            decoded.advance_on(&dec, target as u64);
            pos = target;
            let r = reference.checkpoint().expect("reference checkpoint");
            let d = decoded.checkpoint().expect("decoded checkpoint");
            assert_eq!(
                r.to_bytes(),
                d.to_bytes(),
                "{}: checkpoint diverged at instruction {target}",
                kind.name()
            );
        }
        assert_eq!(reference.take_llc_misses(), decoded.take_llc_misses());
    }
}

/// Same property across the machine-configuration dimension (cache geometry,
/// LTP mode and classifier all live inside the checkpoint).
#[test]
fn decoded_checkpoints_byte_identical_across_configs() {
    let kind = WorkloadKind::MixedPhases;
    let detail = trace(kind, 99, 20_000);
    let dec = DecodedTrace::from_insts(&detail);
    for cfg in [
        PipelineConfig::micro2015_baseline(),
        PipelineConfig::small_no_ltp(),
        PipelineConfig::ltp_proposed(),
        PipelineConfig::limit_study_unlimited().with_iq(32),
    ] {
        let mut reference = FunctionalFastForward::new(cfg);
        let mut decoded = FunctionalFastForward::new(cfg);
        reference.feed_all(&detail);
        decoded.advance_on(&dec, dec.len());
        assert_eq!(
            reference.checkpoint().expect("ref").to_bytes(),
            decoded.checkpoint().expect("dec").to_bytes()
        );
    }
}

fn assert_same_sampled_results(
    total_insts: u64,
    intervals: usize,
    detail_warm: u64,
    detail_measure: u64,
) -> Result<(), TestCaseError> {
    let spec = SampleSpec {
        total_insts,
        intervals,
        detail_warm,
        detail_measure,
        seed: 2015,
        warm_insts: 1_000,
    };
    let kind = WorkloadKind::IndirectStream;
    let detail = trace(kind, spec.seed.wrapping_add(1), spec.total_insts as usize);
    let cfg = PipelineConfig::ltp_proposed();
    let streamed = SampledRequest::new(cfg, kind, spec)
        .trace(&detail)
        .run()
        .expect("streamed runner");
    let two_phase = SampledRequest::new(cfg, kind, spec)
        .trace(&detail)
        .two_phase()
        .run()
        .expect("two-phase runner");

    prop_assert_eq!(streamed.intervals.len(), two_phase.intervals.len());
    for (s, t) in streamed.intervals.iter().zip(&two_phase.intervals) {
        prop_assert_eq!(s.index, t.index);
        prop_assert_eq!(s.start, t.start);
        prop_assert_eq!(s.instructions, t.instructions, "interval {}", s.index);
        prop_assert_eq!(s.cycles, t.cycles, "interval {}", s.index);
        prop_assert_eq!(s.ipc.to_bits(), t.ipc.to_bits(), "interval {}", s.index);
        prop_assert_eq!(s.weight, t.weight, "interval {}", s.index);
    }
    prop_assert_eq!(streamed.checkpoint_bytes, two_phase.checkpoint_bytes);
    prop_assert_eq!(streamed.ipc.mean.to_bits(), two_phase.ipc.mean.to_bits());
    prop_assert_eq!(
        streamed.ipc.half_width.to_bits(),
        two_phase.ipc.half_width.to_bits()
    );
    prop_assert_eq!(streamed.detailed_insts, two_phase.detailed_insts);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Streaming and two-phase runners agree over arbitrary interval splits:
    /// trace lengths that do not divide by the interval count, strides
    /// shorter than the requested warm+measure window (clamped), and any
    /// interval count from one upward.
    #[test]
    fn streaming_matches_two_phase_over_interval_splits(
        total in 6_000u64..40_000,
        intervals in 1usize..10,
        warm in 0u64..3_000,
        measure in 1u64..4_000,
    ) {
        assert_same_sampled_results(total, intervals, warm, measure)?;
    }
}

/// The named edge cases, pinned deterministically (the proptest above may or
/// may not generate them in any given run).
#[test]
fn streaming_matches_two_phase_on_edge_splits() {
    // Length not divisible by the interval count.
    assert_same_sampled_results(10_007, 7, 200, 400).expect("indivisible split");
    // Intervals shorter than warm + measure (window clamps).
    assert_same_sampled_results(6_000, 6, 5_000, 5_000).expect("clamped window");
    // Single-interval trace (single IPC sample, zero-width CI).
    assert_same_sampled_results(8_000, 1, 500, 1_000).expect("single interval");
}
