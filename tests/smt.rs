//! SMT co-run mode: correctness and the paper's headline resource-sharing
//! result.
//!
//! The strongest regression here is the equivalence test: an SMT-configured
//! machine (two hardware threads, dynamic sharing) whose second thread is
//! idle must reproduce the single-thread pipeline **bit for bit** — same
//! cycle count, same LTP counters, same time-weighted occupancies. Together
//! with `golden_stats.rs` (which pins the single-thread pipeline to the seed
//! fingerprints) this proves the SMT generalisation did not perturb the
//! pre-SMT machine.

use ltp_core::{LtpConfig, LtpMode};
use ltp_experiments::{RunOptions, SimBuilder};
use ltp_pipeline::{PipelineConfig, Processor, RunError, RunResult, SharePolicy, SmtRunResult};
use ltp_workloads::{co_trace, replay_slice, trace, WorkloadKind};

fn opts() -> RunOptions {
    RunOptions {
        detail_insts: 6_000,
        warm_insts: 4_000,
        seed: 2015,
    }
}

/// The same fingerprint `golden_stats.rs` pins against the seed simulator.
fn fingerprint(r: &RunResult) -> String {
    format!(
        "cycles={} insts={} parked={} rel_io={} rel_ooo={} forced={} iqw={} rfw={} llc={} \
         ltp_occ={:.6} ltp_peak={} iq_occ={:.6} regs_occ={:.6}",
        r.cycles,
        r.instructions,
        r.ltp.total_parked(),
        r.ltp.released_in_order,
        r.ltp.released_out_of_order,
        r.ltp.force_released,
        r.activity.iq_writes,
        r.activity.rf_writes,
        r.llc_miss_loads,
        r.occupancy.ltp.mean(),
        r.occupancy.ltp.peak(),
        r.occupancy.iq.mean(),
        r.occupancy.regs.mean(),
    )
}

/// Runs `kind` on the SMT variant of `cfg` with the second thread idle
/// (empty stream), replaying exactly the trace the single-thread
/// `SimBuilder` run would use.
fn run_with_idle_sibling(
    kind: WorkloadKind,
    cfg: PipelineConfig,
    policy: SharePolicy,
    o: &RunOptions,
) -> SmtRunResult {
    let warm = trace(kind, o.seed, o.warm_insts as usize);
    let detail = trace(kind, o.seed.wrapping_add(1), o.detail_insts as usize);
    let mut cpu = Processor::new(cfg.smt(policy));
    cpu.warm_caches(&warm);
    let idle: Vec<ltp_isa::DynInst> = Vec::new();
    cpu.run_smt(
        vec![
            replay_slice(kind.name(), &detail),
            replay_slice("idle", &idle),
        ],
        o.detail_insts,
    )
    .expect("no deadlock")
}

/// SMT mode with one active thread reproduces the single-thread golden
/// fingerprints bit-for-bit, under both dynamic policies. (The single-thread
/// runs themselves are pinned to the seed by `golden_stats.rs`, so this
/// transitively ties the SMT machine to the 24 golden fingerprints.)
#[test]
fn smt_with_idle_second_thread_matches_single_thread_bit_for_bit() {
    let o = opts();
    let configs = [
        ("no_ltp", PipelineConfig::small_no_ltp()),
        ("ltp_nu_uit", PipelineConfig::ltp_proposed()),
        (
            "ltp_both_uit",
            PipelineConfig::ltp_proposed().with_ltp(LtpConfig {
                mode: LtpMode::Both,
                ..LtpConfig::nu_only_128x4()
            }),
        ),
    ];
    for kind in [WorkloadKind::IndirectStream, WorkloadKind::MixedPhases] {
        for (label, cfg) in configs {
            let single = SimBuilder::new(cfg, kind)
                .options(&o)
                .run()
                .expect("no deadlock");
            for policy in [SharePolicy::Shared, SharePolicy::Icount] {
                let smt = run_with_idle_sibling(kind, cfg, policy, &o);
                assert_eq!(
                    fingerprint(&smt.threads[0]),
                    fingerprint(&single),
                    "SMT({policy:?}) with an idle sibling diverged from the single-thread \
                     machine on {kind}/{label}"
                );
                assert_eq!(smt.threads[1].instructions, 0);
                assert_eq!(
                    smt.cycles, single.cycles,
                    "shared timeline must end when the only active thread drains"
                );
            }
        }
    }
}

/// The paper's SMT payoff: on a memory-bound co-run pair the LTP machine's
/// aggregate throughput beats (or at least matches) the same machine without
/// LTP, because the IQ entries and registers parking frees are consumed by
/// the co-runner — visible as the parking thread's own IPC gain and the
/// co-runner holding at least as many ROB/IQ entries.
#[test]
fn ltp_frees_shared_resources_for_the_co_runner() {
    let o = opts();
    let pair = (WorkloadKind::IndirectStream, WorkloadKind::GatherFp);
    let base = SimBuilder::co_run(PipelineConfig::small_no_ltp(), pair.0, pair.1)
        .options(&o)
        .run()
        .expect("no deadlock");
    let ltp = SimBuilder::co_run(PipelineConfig::ltp_proposed(), pair.0, pair.1)
        .options(&o)
        .run()
        .expect("no deadlock");

    let parked: u64 = ltp.threads.iter().map(|t| t.ltp.total_parked()).sum();
    assert!(parked > 0, "the memory-bound pair must park instructions");
    assert!(
        ltp.aggregate_ipc() >= base.aggregate_ipc(),
        "LTP must not lose aggregate throughput on the memory-bound pair: \
         ltp {:.4} vs baseline {:.4}",
        ltp.aggregate_ipc(),
        base.aggregate_ipc()
    );
    assert!(
        ltp.thread_ipc(0) > base.thread_ipc(0),
        "the parking thread itself must speed up: {:.4} vs {:.4}",
        ltp.thread_ipc(0),
        base.thread_ipc(0)
    );
    // The co-runner occupies at least as much of the shared window as it did
    // without LTP (the freed resources are in use, not idle).
    assert!(
        ltp.threads[1].occupancy.rob.mean() >= base.threads[1].occupancy.rob.mean(),
        "co-runner ROB occupancy must not shrink under LTP: {:.2} vs {:.2}",
        ltp.threads[1].occupancy.rob.mean(),
        base.threads[1].occupancy.rob.mean()
    );
}

/// Dynamic sharing must beat the static partition on an asymmetric pair:
/// entries a stalled thread is not using are available to its co-runner.
#[test]
fn dynamic_sharing_beats_static_partition() {
    let o = RunOptions {
        detail_insts: 4_000,
        warm_insts: 2_000,
        seed: 2015,
    };
    let cfg = PipelineConfig::ltp_proposed();
    let run = |policy: SharePolicy| {
        SimBuilder::co_run(
            cfg.smt(policy),
            WorkloadKind::IndirectStream,
            WorkloadKind::GatherFp,
        )
        .options(&o)
        .run()
        .expect("no deadlock")
    };
    let shared = run(SharePolicy::Shared);
    let static_part = run(SharePolicy::StaticPartition);
    let icount = run(SharePolicy::Icount);
    assert!(
        shared.aggregate_ipc() > static_part.aggregate_ipc(),
        "dynamic sharing {:.4} must beat the static partition {:.4}",
        shared.aggregate_ipc(),
        static_part.aggregate_ipc()
    );
    // ICOUNT is a fetch-arbitration variant of dynamic sharing; it must at
    // least run both threads to completion on the shared back end.
    assert_eq!(icount.total_instructions(), 2 * o.detail_insts);
}

/// Both streams commit all their instructions and the per-thread results
/// carry per-thread windows (the faster thread's cycles <= the co-run's).
#[test]
fn co_run_commits_both_streams_within_the_shared_timeline() {
    let o = RunOptions {
        detail_insts: 3_000,
        warm_insts: 1_000,
        seed: 7,
    };
    let r = SimBuilder::co_run(
        PipelineConfig::ltp_proposed(),
        WorkloadKind::ComputeBound,
        WorkloadKind::IndirectStream,
    )
    .options(&o)
    .run()
    .expect("no deadlock");
    assert_eq!(r.threads.len(), 2);
    assert_eq!(r.total_instructions(), 2 * o.detail_insts);
    for t in &r.threads {
        assert_eq!(t.instructions, o.detail_insts);
        assert!(t.cycles <= r.cycles);
    }
    // The compute-bound thread finishes its window first.
    assert!(r.threads[0].cycles < r.threads[1].cycles);
    assert!(r.aggregate_ipc() > 0.0);
    assert!(r.thread_ipc(0) > r.thread_ipc(1));
}

/// A thread that reaches its instruction budget before its stream drains
/// stops fetching and renaming and drains in flight: its committed count
/// stays near the budget (within the in-flight window) instead of running
/// to the end of the trace, and the co-runner still commits everything.
#[test]
fn capped_thread_drains_instead_of_running_past_its_budget() {
    let cap = 1_000u64;
    let long = co_trace(WorkloadKind::ComputeBound, 11, 10_000, 0);
    let short = co_trace(WorkloadKind::IndirectStream, 12, cap as usize, 1);
    let cfg = PipelineConfig::micro2015_baseline().smt(SharePolicy::Shared);
    let mut cpu = Processor::new(cfg);
    let r = cpu
        .run_smt(
            vec![replay_slice("long", &long), replay_slice("short", &short)],
            cap,
        )
        .expect("no deadlock");
    assert!(
        r.threads[0].instructions >= cap,
        "the capped thread must reach its budget"
    );
    assert!(
        r.threads[0].instructions < cap + cfg.rob_size as u64,
        "a capped thread must drain, not run its whole trace: committed {}",
        r.threads[0].instructions
    );
    assert_eq!(r.threads[1].instructions, cap);
}

/// The oracle classifier requires an analysed oracle on *every* thread; the
/// co-run builder attaches one per thread, and a bare SMT processor without
/// them is refused instead of silently running the fallback classifier.
#[test]
fn smt_oracle_paths_are_checked_per_thread() {
    let o = RunOptions {
        detail_insts: 2_000,
        warm_insts: 500,
        seed: 3,
    };
    let cfg = PipelineConfig::ltp_proposed().with_oracle(true);
    let r = SimBuilder::co_run(cfg, WorkloadKind::IndirectStream, WorkloadKind::GatherFp)
        .options(&o)
        .run()
        .expect("no deadlock");
    assert_eq!(r.total_instructions(), 2 * o.detail_insts);
    assert!(r.threads.iter().map(|t| t.ltp.total_parked()).sum::<u64>() > 0);

    // Without the per-thread oracles the run must be refused.
    let detail: Vec<ltp_isa::DynInst> = trace(WorkloadKind::IndirectStream, 4, 500);
    let mut cpu = Processor::new(cfg.smt(SharePolicy::Shared));
    let err = cpu
        .run_smt(
            vec![replay_slice("a", &detail), replay_slice("b", &detail)],
            500,
        )
        .expect_err("oracle config without attached oracles must be refused");
    assert!(matches!(err, RunError::OracleNotAttached), "got {err}");
}

/// `run` on an SMT machine and `run_smt` with a mismatched stream count are
/// configuration errors, not silent misbehaviour.
#[test]
#[should_panic(expected = "use run_smt")]
fn single_thread_run_on_smt_machine_panics() {
    let detail = trace(WorkloadKind::ComputeBound, 1, 100);
    let mut cpu = Processor::new(PipelineConfig::micro2015_baseline().smt(SharePolicy::Shared));
    let _ = cpu.run(replay_slice("x", &detail), 100);
}

#[test]
#[should_panic(expected = "one instruction stream per configured hardware thread")]
fn run_smt_requires_one_stream_per_thread() {
    let detail = trace(WorkloadKind::ComputeBound, 1, 100);
    let mut cpu = Processor::new(PipelineConfig::micro2015_baseline().smt(SharePolicy::Shared));
    let _ = cpu.run_smt(vec![replay_slice("x", &detail)], 100);
}
