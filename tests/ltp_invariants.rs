//! Cross-crate invariant checks: resource bounds, accounting consistency and
//! classification sanity on full simulation runs.

use ltp_core::{LtpMode, OracleAnalysis};
use ltp_experiments::runner::{limit_study_config, run_point, RunOptions};
use ltp_mem::MemoryConfig;
use ltp_pipeline::{PipelineConfig, Processor, RunResult};
use ltp_workloads::{replay, trace, WorkloadKind};

fn opts() -> RunOptions {
    RunOptions {
        detail_insts: 6_000,
        warm_insts: 3_000,
        seed: 77,
    }
}

fn check_resource_bounds(r: &RunResult, cfg: &PipelineConfig) {
    if cfg.iq_size != usize::MAX {
        // The deadlock-avoidance bypass may momentarily exceed the nominal IQ
        // size by a few forced releases.
        assert!(
            r.occupancy.iq.peak() as usize <= cfg.iq_size + cfg.ltp_reserve,
            "IQ peak {} exceeds size {} (+reserve)",
            r.occupancy.iq.peak(),
            cfg.iq_size
        );
    }
    assert!(r.occupancy.rob.peak() as usize <= cfg.rob_size);
    if cfg.lq_size != usize::MAX {
        assert!(r.occupancy.lq.peak() as usize <= cfg.lq_size);
    }
    if cfg.sq_size != usize::MAX {
        assert!(r.occupancy.sq.peak() as usize <= cfg.sq_size);
    }
    if cfg.int_regs != usize::MAX {
        // The available pools grow by one per architectural register as the
        // initial mappings are recycled (footnote 4 of the paper), so the
        // upper bound is available + architectural registers.
        assert!(
            r.occupancy.regs.peak() as usize <= cfg.int_regs + cfg.fp_regs + ltp_isa::NUM_ARCH_REGS,
            "register peak {} exceeds capacity",
            r.occupancy.regs.peak()
        );
    }
    if cfg.ltp.entries != usize::MAX && cfg.ltp.mode.is_enabled() {
        assert!(r.occupancy.ltp.peak() as usize <= cfg.ltp.entries);
    }
}

#[test]
fn resource_bounds_hold_on_every_config() {
    let configs = [
        PipelineConfig::micro2015_baseline(),
        PipelineConfig::small_no_ltp(),
        PipelineConfig::ltp_proposed(),
        limit_study_config(LtpMode::Both).with_iq(16).with_regs(64),
    ];
    for kind in [
        WorkloadKind::IndirectStream,
        WorkloadKind::GatherFp,
        WorkloadKind::ComputeBound,
        WorkloadKind::MixedPhases,
    ] {
        for cfg in configs {
            let r = run_point(kind, cfg, &opts());
            check_resource_bounds(&r, &cfg);
        }
    }
}

#[test]
fn ltp_accounting_is_consistent() {
    let r = run_point(
        WorkloadKind::IndirectStream,
        PipelineConfig::ltp_proposed(),
        &opts(),
    );
    let s = &r.ltp;
    // Everything classified is a renamed instruction; at least the committed
    // instructions were classified.
    assert!(s.total_classified() >= r.instructions);
    // Parked instructions are a subset of classified ones.
    assert!(s.total_parked() <= s.total_classified());
    // Every released instruction was parked at some point.
    let released = s.released_in_order + s.released_out_of_order + s.force_released;
    assert!(released <= s.total_parked());
    // Activity counters match the LTP statistics.
    assert_eq!(r.activity.ltp_writes, s.total_parked());
    assert_eq!(r.activity.ltp_reads, released);
    // Loads/stores parked never exceed total parked.
    assert!(s.parked_loads + s.parked_stores <= s.total_parked());
}

#[test]
fn committed_work_matches_the_trace_mix() {
    let o = opts();
    let detail = trace(
        WorkloadKind::GatherFp,
        o.seed.wrapping_add(1),
        o.detail_insts as usize,
    );
    let expected_loads = detail.iter().filter(|i| i.op().is_load()).count() as u64;
    let expected_stores = detail.iter().filter(|i| i.op().is_store()).count() as u64;

    let mut cpu = Processor::new(PipelineConfig::micro2015_baseline());
    let r = cpu
        .run(replay("gather_fp", detail), o.detail_insts)
        .unwrap();
    assert_eq!(r.loads, expected_loads);
    assert_eq!(r.stores, expected_stores);
    assert!(r.llc_miss_loads <= r.loads);
}

#[test]
fn oracle_never_classifies_ancestorless_instructions_as_urgent() {
    // On a compute-only trace with no long-latency operations, nothing should
    // be urgent or non-ready.
    let t = trace(WorkloadKind::ComputeBound, 3, 4_000);
    let oracle = OracleAnalysis::default().analyze(&t, &MemoryConfig::limit_study());
    // Only the steady state matters: the first instructions see compulsory
    // misses while the (cold) analysis cache warms up, which legitimately
    // create urgent/non-ready slices.
    let steady: Vec<_> = (2_000..4_000u64)
        .map(|s| oracle.classify(ltp_isa::SeqNum(s)))
        .collect();
    let urgent = steady.iter().filter(|c| c.urgent).count();
    let non_ready = steady.iter().filter(|c| c.non_ready()).count();
    assert!(
        urgent <= steady.len() / 50,
        "steady-state compute-bound code has (almost) no urgent slices, got {urgent}"
    );
    assert!(
        non_ready <= steady.len() / 50,
        "steady-state compute-bound code is (almost) all ready, got {non_ready}"
    );
}

#[test]
fn oracle_classification_is_mostly_urgent_on_pointer_chasing() {
    // Pointer chasing is the paper's canonical Urgent + Non-Ready case: the
    // chain loads and their address feeds dominate.
    let t = trace(WorkloadKind::PointerChase, 3, 4_000);
    let oracle = OracleAnalysis::default().analyze(&t, &MemoryConfig::limit_study());
    let hist = oracle.class_histogram();
    let urgent = hist[0] + hist[1];
    let total: u64 = hist.iter().sum();
    // Each chain step is one urgent load plus a couple of non-urgent payload
    // and bookkeeping instructions, so urgent work should be a large minority.
    assert!(
        urgent * 3 > total,
        "pointer-chase urgent share should exceed a third (got {urgent}/{total})"
    );
}

#[test]
fn cpi_is_deterministic_for_a_fixed_seed() {
    let a = run_point(
        WorkloadKind::HashProbe,
        PipelineConfig::ltp_proposed(),
        &opts(),
    );
    let b = run_point(
        WorkloadKind::HashProbe,
        PipelineConfig::ltp_proposed(),
        &opts(),
    );
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.ltp.total_parked(), b.ltp.total_parked());
    assert_eq!(a.llc_miss_loads, b.llc_miss_loads);
}

#[test]
fn warmup_instructions_are_excluded_from_the_result() {
    let o = opts();
    let cfg = PipelineConfig::micro2015_baseline().with_warmup(1_000);
    let detail = trace(WorkloadKind::ComputeBound, 5, o.detail_insts as usize);
    let mut cpu = Processor::new(cfg);
    let r = cpu
        .run(replay("compute_bound", detail), o.detail_insts)
        .unwrap();
    // The warm-up boundary is detected at commit granularity, so it may
    // overshoot by up to one commit group.
    assert!(r.instructions <= o.detail_insts - 1_000);
    assert!(r.instructions >= o.detail_insts - 1_000 - cfg.commit_width as u64);
}
