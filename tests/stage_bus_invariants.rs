//! Property-based structural invariants over the stage bus, checked after
//! every simulated cycle through [`Processor::run_observed`]:
//!
//! * **Free-list register conservation** — `allocated + available ==
//!   capacity` for both register classes on every cycle, `allocated` never
//!   exceeds the capacity, and at the end of a drained run only the live
//!   architectural mappings (at most one register per architectural
//!   register) remain allocated: no leak, no double free.
//! * **Monotonic commit sequence** — the commit slots the bus carries are
//!   strictly increasing in sequence number across the whole run, never more
//!   than `commit_width` per cycle.
//! * **Single release** — no parked instruction is released from the LTP
//!   twice, and every released sequence number eventually commits (nothing
//!   is released that was never a real in-flight instruction).

use ltp_core::{ClassifierKind, LtpConfig, LtpMode};
use ltp_isa::{NUM_ARCH_FP_REGS, NUM_ARCH_INT_REGS};
use ltp_pipeline::{PipelineConfig, Processor};
use ltp_workloads::{replay, trace, WorkloadKind};
use proptest::prelude::*;
use std::collections::HashSet;

fn workload(idx: usize) -> WorkloadKind {
    WorkloadKind::ALL[idx % WorkloadKind::ALL.len()]
}

fn mode(idx: usize) -> LtpMode {
    [
        LtpMode::Off,
        LtpMode::NonUrgentOnly,
        LtpMode::NonReadyOnly,
        LtpMode::Both,
    ][idx % 4]
}

fn classifier(idx: usize) -> ClassifierKind {
    ClassifierKind::SWEEPABLE[idx % ClassifierKind::SWEEPABLE.len()]
}

fn config(mode_idx: usize, classifier_idx: usize, small_iq: bool) -> PipelineConfig {
    let m = mode(mode_idx);
    let base = if small_iq {
        PipelineConfig::ltp_proposed().with_iq(16)
    } else {
        PipelineConfig::ltp_proposed()
    };
    match m {
        LtpMode::Off => base.with_ltp(LtpConfig::disabled()),
        m => base
            .with_ltp(LtpConfig {
                mode: m,
                ..LtpConfig::nu_only_128x4()
            })
            .with_classifier(classifier(classifier_idx)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn stage_bus_invariants_hold_on_random_points(
        kind_idx in 0usize..7,
        mode_idx in 0usize..4,
        classifier_idx in 0usize..4,
        insts in 300u64..900,
        seed in 0u64..1_000,
        small_iq in any::<bool>(),
    ) {
        let kind = workload(kind_idx);
        let cfg = config(mode_idx, classifier_idx, small_iq);
        let detail = trace(kind, seed, insts as usize);

        let mut cpu = Processor::new(cfg);
        let mut last_commit: Option<u64> = None;
        let mut released: HashSet<u64> = HashSet::new();
        let mut committed: HashSet<u64> = HashSet::new();
        let mut violations: Vec<String> = Vec::new();

        let r = cpu
            .run_observed(replay(kind.name(), detail), insts, |view| {
                // Free-list conservation, both classes, every cycle.
                for (label, regs) in [("int", view.int_regs), ("fp", view.fp_regs)] {
                    if regs.capacity != usize::MAX {
                        if regs.allocated + regs.available != regs.capacity {
                            violations.push(format!(
                                "cycle {}: {label} regs {} + {} != {}",
                                view.cycle, regs.allocated, regs.available, regs.capacity
                            ));
                        }
                        if regs.allocated > regs.capacity {
                            violations.push(format!(
                                "cycle {}: {label} over-allocated", view.cycle
                            ));
                        }
                    }
                }
                // Monotonic commit sequence, bounded width.
                if view.bus.commits.len() > cfg.commit_width {
                    violations.push(format!(
                        "cycle {}: {} commits exceed width {}",
                        view.cycle,
                        view.bus.commits.len(),
                        cfg.commit_width
                    ));
                }
                for slot in &view.bus.commits {
                    if let Some(prev) = last_commit {
                        if prev >= slot.seq.0 {
                            violations.push(format!(
                                "cycle {}: commit seq {} after {}",
                                view.cycle, slot.seq.0, prev
                            ));
                        }
                    }
                    last_commit = Some(slot.seq.0);
                    committed.insert(slot.seq.0);
                }
                // Nothing is released from the LTP twice.
                for seq in &view.bus.releases {
                    if !released.insert(seq.0) {
                        violations.push(format!(
                            "cycle {}: seq {} released twice",
                            view.cycle, seq.0
                        ));
                    }
                }
            })
            .expect("random point must not deadlock");

        prop_assert!(violations.is_empty(), "invariant violations: {violations:?}");
        prop_assert_eq!(r.instructions, insts);

        // Every LTP release was a real instruction: it must have committed by
        // the time the (fully drained) run ended.
        prop_assert!(
            released.is_subset(&committed),
            "released-but-never-committed seqs: {:?}",
            released.difference(&committed).collect::<Vec<_>>()
        );

        // End-of-run conservation: the drained machine holds at most one
        // register per architectural register (the live mappings); everything
        // else was returned to the free lists.
        let (int_regs, fp_regs) = cpu.register_files();
        prop_assert!(
            int_regs.allocated <= NUM_ARCH_INT_REGS,
            "int registers leaked: {} still allocated",
            int_regs.allocated
        );
        prop_assert!(
            fp_regs.allocated <= NUM_ARCH_FP_REGS,
            "fp registers leaked: {} still allocated",
            fp_regs.allocated
        );
    }
}
