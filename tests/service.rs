//! End-to-end tests of the `ltp-service` HTTP job server, driven over real
//! TCP sockets.
//!
//! The anchor property is transport bit-identity: a job submitted over HTTP
//! must report exactly the per-interval measurements — and therefore exactly
//! the digest — that the in-process [`SampledRequest`] API produces for the
//! same inputs.

use ltp_experiments::sampled::{digest_line, result_digest, SampleSpec, SampledRequest};
use ltp_service::json::Json;
use ltp_service::{client, Server, ServiceConfig};
use ltp_workloads::WorkloadKind;
use std::net::SocketAddr;
use std::path::PathBuf;

/// A process-unique scratch directory (removed best-effort on drop).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("ltp_service_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The small, fast job geometry every test uses.
fn tiny_spec() -> SampleSpec {
    SampleSpec {
        total_insts: 24_000,
        intervals: 4,
        detail_warm: 250,
        detail_measure: 600,
        seed: 11,
        warm_insts: 1_000,
    }
}

fn tiny_job_body() -> String {
    let s = tiny_spec();
    format!(
        r#"{{"workload":"indirect_stream","config":"ltp_proposed",
            "spec":{{"total_insts":{},"intervals":{},"detail_warm":{},
            "detail_measure":{},"seed":{},"warm_insts":{}}}}}"#,
        s.total_insts, s.intervals, s.detail_warm, s.detail_measure, s.seed, s.warm_insts
    )
}

/// A deliberately long-running job (many intervals over a long trace) for
/// cancellation and admission tests.
fn slow_job_body() -> String {
    r#"{"workload":"pointer_chase","spec":{"total_insts":400000,"intervals":16,
        "detail_warm":2000,"detail_measure":8000,"seed":5,"warm_insts":4000}}"#
        .to_string()
}

fn submit(addr: SocketAddr, body: &str) -> u64 {
    let resp = client::request(addr, "POST", "/jobs", Some(body)).expect("submit");
    assert_eq!(resp.status, 201, "submit failed: {}", resp.text());
    Json::parse(resp.text())
        .expect("submit JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("job id")
}

/// Streams `/jobs/:id/results` to completion and returns (interval lines,
/// summary object).
fn stream_results(addr: SocketAddr, id: u64) -> (Vec<Json>, Json) {
    let resp =
        client::request(addr, "GET", &format!("/jobs/{id}/results"), None).expect("results stream");
    assert_eq!(resp.status, 200);
    let mut intervals = Vec::new();
    let mut summary = None;
    for line in resp.text().lines() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad stream line `{line}`: {e}"));
        if v.get("final").and_then(Json::as_bool) == Some(true) {
            summary = Some(v);
        } else if v.get("report").is_none() {
            intervals.push(v);
        }
    }
    (
        intervals,
        summary.expect("stream ended without a summary line"),
    )
}

#[test]
fn http_job_digest_is_bit_identical_to_in_process_run() {
    let mut server = Server::start(&ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("server");
    let id = submit(server.addr(), &tiny_job_body());
    let (intervals, summary) = stream_results(server.addr(), id);
    assert_eq!(summary.get("state").and_then(Json::as_str), Some("done"));
    let http_digest = summary
        .get("digest")
        .and_then(Json::as_str)
        .expect("digest")
        .to_string();

    // The same point, run directly through the builder API.
    let spec = tiny_spec();
    let direct = SampledRequest::new(
        ltp_pipeline::PipelineConfig::ltp_proposed(),
        WorkloadKind::IndirectStream,
        spec,
    )
    .run()
    .expect("direct run");
    let mut lines = String::new();
    for m in &direct.intervals {
        lines.push_str(&digest_line("indirect_stream", "ltp_proposed", m));
    }
    assert_eq!(
        http_digest,
        result_digest(&lines),
        "HTTP transport changed the measured result"
    );

    // The streamed intervals are the measurements themselves, not echoes:
    // cross-check cycles per interval index against the direct run.
    assert_eq!(intervals.len(), direct.intervals.len());
    for v in &intervals {
        let index = v.get("index").and_then(Json::as_u64).expect("index") as usize;
        let cycles = v.get("cycles").and_then(Json::as_u64).expect("cycles");
        let direct_m = direct
            .intervals
            .iter()
            .find(|m| m.index == index)
            .expect("direct interval");
        assert_eq!(cycles, direct_m.cycles, "interval {index}");
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_share_the_checkpoint_cache() {
    let scratch = ScratchDir::new("cache_share");
    let mut server = Server::start(&ServiceConfig {
        workers: 2,
        cache_dir: Some(scratch.0.join("cache")),
        ..ServiceConfig::default()
    })
    .expect("server");
    let addr = server.addr();

    // Seed the cache: one client runs the job to completion, storing the
    // functional warm states.
    let seed_id = submit(addr, &tiny_job_body());
    let (_, seed_summary) = stream_results(addr, seed_id);
    assert_eq!(
        seed_summary.get("state").and_then(Json::as_str),
        Some("done")
    );
    let seed_digest = seed_summary
        .get("digest")
        .and_then(Json::as_str)
        .expect("digest")
        .to_string();

    // Two clients submit the identical job concurrently; both must hit the
    // shared cache and reproduce the seeded digest bit-for-bit.
    let handles: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let id = submit(addr, &tiny_job_body());
                let (_, summary) = stream_results(addr, id);
                (
                    summary
                        .get("state")
                        .and_then(Json::as_str)
                        .expect("state")
                        .to_string(),
                    summary
                        .get("digest")
                        .and_then(Json::as_str)
                        .expect("digest")
                        .to_string(),
                )
            })
        })
        .collect();
    let results: Vec<(String, String)> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    for (state, digest) in &results {
        assert_eq!(state, "done");
        assert_eq!(
            digest, &seed_digest,
            "cache sharing changed a result digest"
        );
    }

    // Both concurrent runs were served by the warm states the seed run
    // stored.
    let metrics = client::request(addr, "GET", "/metrics", None).expect("metrics");
    let v = Json::parse(metrics.text()).expect("metrics JSON");
    let hits = v
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .expect("cache hits");
    assert!(
        hits >= 2,
        "expected cross-client cache hits, metrics: {v:?}"
    );
    server.shutdown();
}

#[test]
fn cancellation_mid_run_yields_a_terminal_job_and_a_live_server() {
    let mut server = Server::start(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server");
    let addr = server.addr();
    let id = submit(addr, &slow_job_body());

    let cancel = client::request(addr, "DELETE", &format!("/jobs/{id}"), None).expect("cancel");
    assert_eq!(cancel.status, 202);

    let job = server.registry().get(id).expect("job");
    let state = job.wait_terminal();
    assert!(
        matches!(
            state,
            ltp_service::jobs::JobState::Cancelled | ltp_service::jobs::JobState::Partial
        ),
        "cancelled job ended as {state:?}"
    );

    // The summary stream still terminates cleanly for a cancelled job...
    let (_, summary) = stream_results(addr, id);
    let final_state = summary.get("state").and_then(Json::as_str).expect("state");
    assert!(final_state == "cancelled" || final_state == "partial");
    // ...and the server keeps serving new work.
    let id2 = submit(addr, &tiny_job_body());
    let (_, summary2) = stream_results(addr, id2);
    assert_eq!(summary2.get("state").and_then(Json::as_str), Some("done"));
    server.shutdown();
}

#[test]
fn admission_control_returns_429_with_retry_after() {
    let mut server = Server::start(&ServiceConfig {
        workers: 1,
        max_jobs: 1,
        ..ServiceConfig::default()
    })
    .expect("server");
    let addr = server.addr();
    let id = submit(addr, &slow_job_body());

    let second = client::request(addr, "POST", "/jobs", Some(&tiny_job_body())).expect("request");
    assert_eq!(second.status, 429, "body: {}", second.text());
    let v = Json::parse(second.text()).expect("429 JSON");
    assert_eq!(v.get("error").and_then(Json::as_str), Some("busy"));
    assert_eq!(v.get("limit").and_then(Json::as_u64), Some(1));

    let metrics = client::request(addr, "GET", "/metrics", None).expect("metrics");
    let rejected = Json::parse(metrics.text())
        .expect("metrics JSON")
        .get("rejected")
        .and_then(Json::as_u64)
        .expect("rejected");
    assert!(rejected >= 1);

    // Draining the active job reopens admission.
    let cancel = client::request(addr, "DELETE", &format!("/jobs/{id}"), None).expect("cancel");
    assert_eq!(cancel.status, 202);
    server.registry().get(id).expect("job").wait_terminal();
    let id2 = submit(addr, &tiny_job_body());
    let (_, summary) = stream_results(addr, id2);
    assert_eq!(summary.get("state").and_then(Json::as_str), Some("done"));
    server.shutdown();
}

#[test]
fn injected_worker_panic_degrades_the_job_not_the_server() {
    let mut server = Server::start(&ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("server");
    let addr = server.addr();

    // Interval 1 panics on every attempt the retry budget allows, so the job
    // completes degraded: measured remainder + one lost interval.
    let s = tiny_spec();
    let body = format!(
        r#"{{"workload":"indirect_stream","inject":"panic@1.0,panic@1.1,panic@1.2",
            "retries":3,
            "spec":{{"total_insts":{},"intervals":{},"detail_warm":{},
            "detail_measure":{},"seed":{},"warm_insts":{}}}}}"#,
        s.total_insts, s.intervals, s.detail_warm, s.detail_measure, s.seed, s.warm_insts
    );
    let id = submit(addr, &body);
    let (intervals, summary) = stream_results(addr, id);
    assert_eq!(
        summary.get("state").and_then(Json::as_str),
        Some("partial"),
        "summary: {summary:?}"
    );
    assert_eq!(
        intervals.len(),
        s.intervals - 1,
        "exactly one interval lost"
    );
    assert!(intervals
        .iter()
        .all(|v| v.get("index").and_then(Json::as_u64) != Some(1)));
    let error = summary
        .get("error")
        .and_then(Json::as_str)
        .expect("degraded jobs carry their failure detail");
    assert!(error.contains("interval 1"), "error: {error}");

    // The server survived the worker panics and still runs clean jobs.
    let id2 = submit(addr, &tiny_job_body());
    let (_, summary2) = stream_results(addr, id2);
    assert_eq!(summary2.get("state").and_then(Json::as_str), Some("done"));
    server.shutdown();
}

#[test]
fn killed_server_resumes_journaled_jobs_bit_identically() {
    let scratch = ScratchDir::new("resume");
    let journal_dir = scratch.0.join("journal");

    // Reference digest: the same job on a journal-free server.
    let mut reference = Server::start(&ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("reference server");
    let ref_id = submit(reference.addr(), &tiny_job_body());
    let (_, ref_summary) = stream_results(reference.addr(), ref_id);
    let ref_digest = ref_summary
        .get("digest")
        .and_then(Json::as_str)
        .expect("digest")
        .to_string();
    reference.shutdown();

    // First server: submit, let it make some progress, then drop it without
    // waiting for the job ("kill"). Cancellation on shutdown leaves the
    // journal with whatever completed.
    let mut first = Server::start(&ServiceConfig {
        workers: 2,
        journal_dir: Some(journal_dir.clone()),
        ..ServiceConfig::default()
    })
    .expect("first server");
    let id = submit(first.addr(), &tiny_job_body());
    // Wait until at least one interval has been journaled, so the resumed
    // run genuinely replays state rather than starting fresh.
    let job = first.registry().get(id).expect("job");
    for _ in 0..600 {
        if job.with_shared(|s| !s.intervals.is_empty() || s.state.is_terminal()) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    first.shutdown();
    // A cancelled-at-shutdown job is terminal on disk; make it look like a
    // crash instead: the `.done` marker never got written.
    let done_marker = journal_dir.join(format!("{id}.done"));
    let _ = std::fs::remove_file(&done_marker);

    // Second server on the same journal dir resumes and completes the job.
    let mut second = Server::start(&ServiceConfig {
        workers: 2,
        journal_dir: Some(journal_dir.clone()),
        resume: true,
        ..ServiceConfig::default()
    })
    .expect("second server");
    let resumed = second
        .registry()
        .get(id)
        .expect("resumed job is registered");
    let state = resumed.wait_terminal();
    assert_eq!(
        state,
        ltp_service::jobs::JobState::Done,
        "resumed job state"
    );
    let (_, summary) = stream_results(second.addr(), id);
    assert_eq!(
        summary.get("digest").and_then(Json::as_str),
        Some(ref_digest.as_str()),
        "resume changed the result digest"
    );
    assert!(done_marker.exists(), "completion marker rewritten");
    second.shutdown();
}
