//! Checkpoint/restore regression tests.
//!
//! The contract under test: capturing a [`Snapshot`] mid-run, serializing it
//! through the versioned binary codec, restoring it in a fresh process-like
//! context and finishing the run is **bit-for-bit** identical to never having
//! stopped. The uninterrupted runs used as references here are themselves
//! pinned by `tests/golden_stats.rs` (24 golden fingerprints), so these tests
//! transitively pin checkpoint/restore to the seed simulator's behaviour.

use ltp_core::{ClassifierKind, LtpConfig, LtpMode};
use ltp_experiments::runner::{limit_study_config, RunOptions};
use ltp_experiments::SimBuilder;
use ltp_pipeline::{PipelineConfig, RunResult, Snapshot};
use ltp_workloads::{replay_slice, WorkloadKind};
use proptest::prelude::*;

/// The golden-run options (`tests/golden_stats.rs`).
fn opts() -> RunOptions {
    RunOptions {
        detail_insts: 6_000,
        warm_insts: 4_000,
        seed: 2015,
    }
}

/// The full stable fingerprint of a run (superset of the golden-stats one:
/// adds memory and branch statistics so divergence anywhere shows up).
fn fingerprint(r: &RunResult) -> String {
    format!(
        "cycles={} insts={} parked={} rel_io={} rel_ooo={} forced={} iqw={} iqi={} rfr={} rfw={} \
         llc={} loads={} stores={} mem_acc={} mem_lat={} bmr={:.9} ltp_occ={:.6} ltp_peak={} \
         iq_occ={:.6} regs_occ={:.6} rob_occ={:.6} out_occ={:.6}",
        r.cycles,
        r.instructions,
        r.ltp.total_parked(),
        r.ltp.released_in_order,
        r.ltp.released_out_of_order,
        r.ltp.force_released,
        r.activity.iq_writes,
        r.activity.iq_issues,
        r.activity.rf_reads,
        r.activity.rf_writes,
        r.llc_miss_loads,
        r.loads,
        r.stores,
        r.mem.accesses,
        r.mem.total_latency,
        r.branch_mispredict_rate,
        r.occupancy.ltp.mean(),
        r.occupancy.ltp.peak(),
        r.occupancy.iq.mean(),
        r.occupancy.regs.mean(),
        r.occupancy.rob.mean(),
        r.occupancy.outstanding_misses.mean(),
    )
}

/// The realistic (UIT-classified) machine of the golden suite.
fn realistic(mode: LtpMode) -> PipelineConfig {
    match mode {
        LtpMode::Off => PipelineConfig::small_no_ltp(),
        m => {
            let ltp = LtpConfig {
                mode: m,
                ..LtpConfig::nu_only_128x4()
            };
            PipelineConfig::ltp_proposed().with_ltp(ltp)
        }
    }
}

/// Runs one golden point uninterrupted, then again with a mid-run
/// checkpoint → serialize → deserialize → resume, and asserts identical
/// fingerprints.
fn assert_restore_equivalent(kind: WorkloadKind, cfg: PipelineConfig, checkpoint_at: u64) {
    let o = opts();
    let builder = SimBuilder::new(cfg, kind).options(&o);
    let detail = builder.detail_trace();

    let full = builder.run_on(&detail).expect("uninterrupted run");

    let mut cpu = builder.build();
    let snap = cpu
        .run_to_snapshot(replay_slice(kind.name(), &detail), checkpoint_at)
        .expect("checkpoint");
    drop(cpu); // the rest of the run uses only the serialized state

    let bytes = snap.to_bytes();
    let restored = Snapshot::from_bytes(&bytes).expect("decode");
    assert_eq!(restored.to_bytes(), bytes, "canonical snapshot bytes");
    let resumed = restored
        .resume()
        .run(replay_slice(kind.name(), &detail), o.detail_insts)
        .expect("resumed run");

    assert_eq!(
        fingerprint(&resumed),
        fingerprint(&full),
        "restore diverged: {} checkpoint@{checkpoint_at}",
        kind.name()
    );
}

#[test]
fn restore_is_bit_for_bit_on_the_uit_path() {
    for mode in [LtpMode::Off, LtpMode::NonUrgentOnly, LtpMode::Both] {
        for kind in [WorkloadKind::IndirectStream, WorkloadKind::GatherFp] {
            assert_restore_equivalent(kind, realistic(mode), 3_000);
        }
    }
}

#[test]
fn restore_is_bit_for_bit_on_the_oracle_path() {
    // Oracle classifier state (the analysed per-seq classes) rides inside
    // the snapshot, so the resumed run needs no re-attachment.
    for mode in [LtpMode::NonUrgentOnly, LtpMode::Both] {
        assert_restore_equivalent(
            WorkloadKind::MixedPhases,
            limit_study_config(mode).with_iq(32),
            2_500,
        );
    }
}

#[test]
fn restore_is_bit_for_bit_for_sweep_classifiers() {
    // Random classifier: the xorshift stream position must resume exactly.
    let cfg = PipelineConfig::ltp_proposed().with_classifier(ClassifierKind::Random {
        non_urgent_percent: 50,
        seed: 0x5eed,
    });
    assert_restore_equivalent(WorkloadKind::HashProbe, cfg, 1_777);
}

#[test]
fn checkpoint_near_the_end_still_matches() {
    // A checkpoint in the drain phase (past most of the trace).
    assert_restore_equivalent(
        WorkloadKind::IndirectStream,
        realistic(LtpMode::NonUrgentOnly),
        5_900,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Round-trip property over real machine states: a checkpoint taken at a
    /// random commit count of a random golden workload/mode encodes
    /// canonically (encode ∘ decode ∘ encode = encode) and resumes to the
    /// uninterrupted run's fingerprint.
    #[test]
    fn snapshot_roundtrip_at_random_checkpoints(
        raw_point in 0u64..4_000,
        mode_idx in 0usize..3,
        kind_idx in 0usize..3,
    ) {
        let mode = [LtpMode::Off, LtpMode::NonUrgentOnly, LtpMode::Both][mode_idx];
        let kind = [
            WorkloadKind::IndirectStream,
            WorkloadKind::MixedPhases,
            WorkloadKind::GatherFp,
        ][kind_idx];
        // Keep the proptest cases cheap: short runs, early checkpoints.
        let o = RunOptions {
            detail_insts: 4_500,
            warm_insts: 1_000,
            seed: 2015,
        };
        let builder = SimBuilder::new(realistic(mode), kind).options(&o);
        let detail = builder.detail_trace();
        let full = builder.run_on(&detail).expect("uninterrupted run");

        let mut cpu = builder.build();
        let snap = cpu
            .run_to_snapshot(replay_slice(kind.name(), &detail), 500 + raw_point)
            .expect("checkpoint");
        let bytes = snap.to_bytes();
        let decoded = Snapshot::from_bytes(&bytes).expect("decode");
        prop_assert_eq!(decoded.to_bytes(), bytes, "non-canonical bytes");
        let resumed = decoded
            .resume()
            .run(replay_slice(kind.name(), &detail), o.detail_insts)
            .expect("resumed run");
        prop_assert_eq!(fingerprint(&resumed), fingerprint(&full));
    }
}
