//! Checkpoint/restore regression tests.
//!
//! The contract under test: capturing a [`Snapshot`] mid-run, serializing it
//! through the versioned binary codec, restoring it in a fresh process-like
//! context and finishing the run is **bit-for-bit** identical to never having
//! stopped. The uninterrupted runs used as references here are themselves
//! pinned by `tests/golden_stats.rs` (24 golden fingerprints), so these tests
//! transitively pin checkpoint/restore to the seed simulator's behaviour.

use ltp_core::{ClassifierKind, LtpConfig, LtpMode};
use ltp_experiments::runner::{limit_study_config, RunOptions};
use ltp_experiments::SimBuilder;
use ltp_pipeline::{PipelineConfig, RunResult, Snapshot};
use ltp_workloads::{replay_slice, WorkloadKind};
use proptest::prelude::*;

// A guard against OOM-scale allocations while decoding hostile snapshot
// bytes: the tracking allocator records the largest single allocation
// request ever made by this test binary. The counting shim needs `unsafe
// impl GlobalAlloc`; the workspace otherwise denies unsafe code, so the
// exemption is scoped to this module (same pattern as
// `tests/hot_loop_alloc.rs`).
#[allow(unsafe_code)]
mod peak_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Largest single allocation request seen so far, in bytes.
    pub static PEAK_REQUEST: AtomicUsize = AtomicUsize::new(0);

    fn record(size: usize) {
        PEAK_REQUEST.fetch_max(size, Ordering::Relaxed);
    }

    pub struct PeakAlloc;

    unsafe impl GlobalAlloc for PeakAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            record(new_size);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            unsafe { System.alloc_zeroed(layout) }
        }
    }
}

#[global_allocator]
static ALLOCATOR: peak_alloc::PeakAlloc = peak_alloc::PeakAlloc;

/// The golden-run options (`tests/golden_stats.rs`).
fn opts() -> RunOptions {
    RunOptions {
        detail_insts: 6_000,
        warm_insts: 4_000,
        seed: 2015,
    }
}

/// The full stable fingerprint of a run (superset of the golden-stats one:
/// adds memory and branch statistics so divergence anywhere shows up).
fn fingerprint(r: &RunResult) -> String {
    format!(
        "cycles={} insts={} parked={} rel_io={} rel_ooo={} forced={} iqw={} iqi={} rfr={} rfw={} \
         llc={} loads={} stores={} mem_acc={} mem_lat={} bmr={:.9} ltp_occ={:.6} ltp_peak={} \
         iq_occ={:.6} regs_occ={:.6} rob_occ={:.6} out_occ={:.6}",
        r.cycles,
        r.instructions,
        r.ltp.total_parked(),
        r.ltp.released_in_order,
        r.ltp.released_out_of_order,
        r.ltp.force_released,
        r.activity.iq_writes,
        r.activity.iq_issues,
        r.activity.rf_reads,
        r.activity.rf_writes,
        r.llc_miss_loads,
        r.loads,
        r.stores,
        r.mem.accesses,
        r.mem.total_latency,
        r.branch_mispredict_rate,
        r.occupancy.ltp.mean(),
        r.occupancy.ltp.peak(),
        r.occupancy.iq.mean(),
        r.occupancy.regs.mean(),
        r.occupancy.rob.mean(),
        r.occupancy.outstanding_misses.mean(),
    )
}

/// The realistic (UIT-classified) machine of the golden suite.
fn realistic(mode: LtpMode) -> PipelineConfig {
    match mode {
        LtpMode::Off => PipelineConfig::small_no_ltp(),
        m => {
            let ltp = LtpConfig {
                mode: m,
                ..LtpConfig::nu_only_128x4()
            };
            PipelineConfig::ltp_proposed().with_ltp(ltp)
        }
    }
}

/// Runs one golden point uninterrupted, then again with a mid-run
/// checkpoint → serialize → deserialize → resume, and asserts identical
/// fingerprints.
fn assert_restore_equivalent(kind: WorkloadKind, cfg: PipelineConfig, checkpoint_at: u64) {
    let o = opts();
    let builder = SimBuilder::new(cfg, kind).options(&o);
    let detail = builder.detail_trace();

    let full = builder.run_on(&detail).expect("uninterrupted run");

    let mut cpu = builder.build();
    let snap = cpu
        .run_to_snapshot(replay_slice(kind.name(), &detail), checkpoint_at)
        .expect("checkpoint");
    drop(cpu); // the rest of the run uses only the serialized state

    let bytes = snap.to_bytes();
    let restored = Snapshot::from_bytes(&bytes).expect("decode");
    assert_eq!(restored.to_bytes(), bytes, "canonical snapshot bytes");
    let resumed = restored
        .resume()
        .run(replay_slice(kind.name(), &detail), o.detail_insts)
        .expect("resumed run");

    assert_eq!(
        fingerprint(&resumed),
        fingerprint(&full),
        "restore diverged: {} checkpoint@{checkpoint_at}",
        kind.name()
    );
}

#[test]
fn restore_is_bit_for_bit_on_the_uit_path() {
    for mode in [LtpMode::Off, LtpMode::NonUrgentOnly, LtpMode::Both] {
        for kind in [WorkloadKind::IndirectStream, WorkloadKind::GatherFp] {
            assert_restore_equivalent(kind, realistic(mode), 3_000);
        }
    }
}

#[test]
fn restore_is_bit_for_bit_on_the_oracle_path() {
    // Oracle classifier state (the analysed per-seq classes) rides inside
    // the snapshot, so the resumed run needs no re-attachment.
    for mode in [LtpMode::NonUrgentOnly, LtpMode::Both] {
        assert_restore_equivalent(
            WorkloadKind::MixedPhases,
            limit_study_config(mode).with_iq(32),
            2_500,
        );
    }
}

#[test]
fn restore_is_bit_for_bit_for_sweep_classifiers() {
    // Random classifier: the xorshift stream position must resume exactly.
    let cfg = PipelineConfig::ltp_proposed().with_classifier(ClassifierKind::Random {
        non_urgent_percent: 50,
        seed: 0x5eed,
    });
    assert_restore_equivalent(WorkloadKind::HashProbe, cfg, 1_777);
}

#[test]
fn checkpoint_near_the_end_still_matches() {
    // A checkpoint in the drain phase (past most of the trace).
    assert_restore_equivalent(
        WorkloadKind::IndirectStream,
        realistic(LtpMode::NonUrgentOnly),
        5_900,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Round-trip property over real machine states: a checkpoint taken at a
    /// random commit count of a random golden workload/mode encodes
    /// canonically (encode ∘ decode ∘ encode = encode) and resumes to the
    /// uninterrupted run's fingerprint.
    #[test]
    fn snapshot_roundtrip_at_random_checkpoints(
        raw_point in 0u64..4_000,
        mode_idx in 0usize..3,
        kind_idx in 0usize..3,
    ) {
        let mode = [LtpMode::Off, LtpMode::NonUrgentOnly, LtpMode::Both][mode_idx];
        let kind = [
            WorkloadKind::IndirectStream,
            WorkloadKind::MixedPhases,
            WorkloadKind::GatherFp,
        ][kind_idx];
        // Keep the proptest cases cheap: short runs, early checkpoints.
        let o = RunOptions {
            detail_insts: 4_500,
            warm_insts: 1_000,
            seed: 2015,
        };
        let builder = SimBuilder::new(realistic(mode), kind).options(&o);
        let detail = builder.detail_trace();
        let full = builder.run_on(&detail).expect("uninterrupted run");

        let mut cpu = builder.build();
        let snap = cpu
            .run_to_snapshot(replay_slice(kind.name(), &detail), 500 + raw_point)
            .expect("checkpoint");
        let bytes = snap.to_bytes();
        let decoded = Snapshot::from_bytes(&bytes).expect("decode");
        prop_assert_eq!(decoded.to_bytes(), bytes, "non-canonical bytes");
        let resumed = decoded
            .resume()
            .run(replay_slice(kind.name(), &detail), o.detail_insts)
            .expect("resumed run");
        prop_assert_eq!(fingerprint(&resumed), fingerprint(&full));
    }
}

/// One valid encoded snapshot, captured once and shared by every mutation
/// case (capturing it is the expensive part).
fn valid_snapshot_bytes() -> &'static [u8] {
    use std::sync::OnceLock;
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let o = RunOptions {
            detail_insts: 4_500,
            warm_insts: 1_000,
            seed: 2015,
        };
        let builder =
            SimBuilder::new(realistic(LtpMode::Both), WorkloadKind::IndirectStream).options(&o);
        let detail = builder.detail_trace();
        let mut cpu = builder.build();
        cpu.run_to_snapshot(replay_slice("indirect_stream", &detail), 2_000)
            .expect("checkpoint")
            .to_bytes()
    })
}

/// Decoding hostile bytes must fail *gracefully*: a typed error (or, for
/// mutations the checksums cannot distinguish from valid data, a decoded
/// snapshot) — never a panic, and never an allocation sized by attacker-
/// controlled length fields. The 64 MiB ceiling is ~300× a real encoding,
/// far below what a length-lying varint (terabytes) would request, and
/// comfortably above every legitimate allocation this test binary makes.
const ALLOC_CEILING: usize = 64 << 20;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single byte overwritten anywhere in a valid encoding (covers header,
    /// length prefixes, payload and checksum bytes).
    #[test]
    fn mutated_snapshot_bytes_never_panic_or_overallocate(
        pos_seed in 0usize..1 << 30,
        byte in 0u32..256,
    ) {
        let mut bytes = valid_snapshot_bytes().to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] = byte as u8;
        let _ = Snapshot::from_bytes(&bytes);
        prop_assert!(
            peak_alloc::PEAK_REQUEST.load(std::sync::atomic::Ordering::Relaxed) < ALLOC_CEILING,
            "an allocation crossed the {ALLOC_CEILING}-byte ceiling"
        );
    }

    /// Truncation to an arbitrary prefix (a torn write): every cut point
    /// must produce a typed error, not a panic or an overallocation.
    #[test]
    fn truncated_snapshot_bytes_never_panic_or_overallocate(len_seed in 0usize..1 << 30) {
        let bytes = valid_snapshot_bytes();
        let len = len_seed % bytes.len();
        prop_assert!(Snapshot::from_bytes(&bytes[..len]).is_err(), "truncated decode succeeded");
        prop_assert!(
            peak_alloc::PEAK_REQUEST.load(std::sync::atomic::Ordering::Relaxed) < ALLOC_CEILING,
            "an allocation crossed the {ALLOC_CEILING}-byte ceiling"
        );
    }

    /// A burst of 0xFF bytes spliced over the encoding — the worst case for
    /// LEB128 length fields, which this turns into huge claimed lengths.
    #[test]
    fn length_lying_snapshot_bytes_never_panic_or_overallocate(
        pos_seed in 0usize..1 << 30,
        burst in 1usize..16,
    ) {
        let mut bytes = valid_snapshot_bytes().to_vec();
        let pos = pos_seed % bytes.len();
        let end = (pos + burst).min(bytes.len());
        bytes[pos..end].fill(0xFF);
        let _ = Snapshot::from_bytes(&bytes);
        prop_assert!(
            peak_alloc::PEAK_REQUEST.load(std::sync::atomic::Ordering::Relaxed) < ALLOC_CEILING,
            "an allocation crossed the {ALLOC_CEILING}-byte ceiling"
        );
    }
}
