//! Smoke test executing the `quickstart` example end-to-end.
//!
//! The examples are the first thing a new user runs; this test keeps them
//! from silently rotting. It shells out through the same `cargo` that is
//! running the test suite (examples are already compiled by `cargo test`,
//! so this only pays the run, not a rebuild).

use std::process::Command;

#[test]
fn quickstart_example_runs_and_reports_a_summary() {
    let cargo = env!("CARGO");
    let output = Command::new(cargo)
        .args(["run", "--offline", "--example", "quickstart"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to spawn cargo run --example quickstart");

    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status.code(),
    );
    // The example ends with a relative-performance summary; its presence
    // means the full pipeline + LTP loop ran to completion.
    assert!(
        stdout.contains("summary"),
        "expected a summary section in quickstart output, got:\n{stdout}"
    );
}
