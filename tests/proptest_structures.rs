//! Property-based tests over the core data structures of the reproduction:
//! caches, MSHRs, free lists, the LTP queue, the ROB, the UIT and the
//! statistics primitives.

use ltp_core::{Criticality, LtpQueue, ParkedInst, TicketSet, Uit};
use ltp_isa::{ArchReg, OpClass, Pc, SeqNum, StaticInst};
use ltp_mem::{Cache, CacheConfig, MshrFile, MshrOutcome};
use ltp_pipeline::{
    FreeList, IqEntry, IssueQueue, RegSource, Rob, RobEntry, RobState, TimingWheel,
};
use ltp_stats::{Histogram, OccupancyTracker};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 4 * 64 * 8,
        line_bytes: 64,
        ways: 4,
        latency: 1,
        tag_to_data: 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache never holds more lines than its capacity, and a line is
    /// always resident immediately after being filled.
    #[test]
    fn cache_capacity_and_fill_visibility(addrs in prop::collection::vec(0u64..0x8000, 1..200)) {
        let mut cache = small_cache();
        for &addr in &addrs {
            cache.fill(addr, false, false);
            prop_assert!(cache.probe(addr), "a just-filled line must be resident");
            prop_assert!(cache.resident_lines() <= 4 * 8);
        }
    }

    /// Demand accesses after a fill hit until the line is evicted; statistics
    /// stay consistent (hits + misses == accesses).
    #[test]
    fn cache_stats_are_consistent(ops in prop::collection::vec((0u64..0x4000, any::<bool>()), 1..300)) {
        let mut cache = small_cache();
        for &(addr, is_write) in &ops {
            if !cache.access(addr, is_write) {
                cache.fill(addr, false, is_write);
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses(), ops.len() as u64);
        prop_assert!(stats.miss_ratio() >= 0.0 && stats.miss_ratio() <= 1.0);
    }

    /// The MSHR file never tracks more outstanding misses than its capacity,
    /// and a merged request always completes no earlier than it was issued.
    #[test]
    fn mshr_capacity_and_merge(lines in prop::collection::vec(0u64..32, 1..100)) {
        let capacity = 4;
        let mut mshrs = MshrFile::new(capacity);
        let mut now = 0u64;
        for &line in &lines {
            now += 3;
            let line_addr = line * 64;
            match mshrs.lookup_or_allocate(line_addr, now) {
                MshrOutcome::Allocated { issue_cycle } => {
                    prop_assert!(issue_cycle >= now);
                    mshrs.record_completion(line_addr, issue_cycle + 200);
                }
                MshrOutcome::Merged { completion_cycle } => {
                    prop_assert!(completion_cycle > now);
                }
            }
            prop_assert!(mshrs.outstanding_at(now) <= capacity);
        }
    }

    /// The free list never hands out the same register twice while it is
    /// still allocated, and never exceeds its capacity.
    #[test]
    fn free_list_never_double_allocates(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut fl = FreeList::new(16);
        let mut live = Vec::new();
        for &alloc in &ops {
            if alloc {
                if let Some(r) = fl.allocate() {
                    prop_assert!(!live.contains(&r), "register {r} handed out twice");
                    live.push(r);
                }
            } else if let Some(r) = live.pop() {
                fl.free(r);
            }
            prop_assert!(fl.allocated() <= 16);
            prop_assert_eq!(fl.allocated(), live.len());
        }
    }

    /// In-order release of the LTP queue returns sequence numbers in strictly
    /// increasing order and never returns more than the occupancy.
    #[test]
    fn ltp_queue_releases_in_program_order(batches in prop::collection::vec(1usize..6, 1..30)) {
        let mut queue = LtpQueue::new(256, 8);
        let mut seq = 0u64;
        let mut cycle = 0u64;
        let mut released_seqs: Vec<u64> = Vec::new();
        for &batch in &batches {
            cycle += 1;
            for _ in 0..batch {
                let parked = ParkedInst {
                    seq: SeqNum(seq),
                    class: Criticality::NON_URGENT_READY,
                    tickets: TicketSet::new(),
                    parked_at: cycle,
                    writes_reg: true,
                    is_load: false,
                    is_store: false,
                };
                if queue.park(parked, cycle) {
                    seq += 1;
                }
            }
            cycle += 1;
            for inst in queue.release_in_order(SeqNum(seq), 4, cycle) {
                released_seqs.push(inst.seq.0);
            }
        }
        for pair in released_seqs.windows(2) {
            prop_assert!(pair[0] < pair[1], "releases must stay in program order");
        }
        prop_assert!(queue.occupancy() + released_seqs.len() == seq as usize);
    }

    /// The ROB commits entries in exactly the order they were pushed.
    #[test]
    fn rob_commits_in_push_order(count in 1usize..100) {
        let mut rob = Rob::new(256);
        for s in 0..count as u64 {
            rob.push(RobEntry {
                seq: SeqNum(s),
                pc: Pc(0x100 + 4 * s),
                op: OpClass::IntAlu,
                state: RobState::Completed,
                dst: Some(ArchReg::int(1)),
                dest_phys: None,
                prev_mapping: RegSource::Ready,
                long_latency: false,
                holds_lq: false,
                holds_sq: false,
                was_parked: false,
                completion_cycle: 0,
            });
        }
        let mut committed = Vec::new();
        while let Some(e) = rob.try_commit() {
            committed.push(e.seq.0);
        }
        prop_assert_eq!(committed.len(), count);
        for (i, s) in committed.iter().enumerate() {
            prop_assert_eq!(*s, i as u64);
        }
    }

    /// The UIT never reports a PC urgent that was never inserted, and (for an
    /// unlimited table) always reports inserted PCs as urgent.
    #[test]
    fn uit_membership(inserted in prop::collection::hash_set(0u64..10_000, 0..100),
                      probed in prop::collection::vec(0u64..10_000, 0..100)) {
        let mut uit = Uit::new(usize::MAX);
        for &pc in &inserted {
            uit.insert(Pc(pc * 4));
        }
        for &pc in &probed {
            let member = uit.contains(Pc(pc * 4));
            prop_assert_eq!(member, inserted.contains(&pc));
        }
    }

    /// The issue queue only ever selects ready entries, oldest first.
    #[test]
    fn issue_queue_selects_ready_oldest_first(ready_flags in prop::collection::vec(any::<bool>(), 1..50)) {
        let mut iq = IssueQueue::new(usize::MAX);
        for (s, &ready) in ready_flags.iter().enumerate() {
            let wait = if ready { vec![] } else { vec![ltp_isa::PhysReg::new(999)] };
            iq.dispatch(IqEntry {
                seq: SeqNum(s as u64),
                fu: OpClass::IntAlu.fu_kind(),
                wait_phys: wait.into_iter().collect(),
                wait_seqs: Default::default(),
            });
        }
        let picked = iq.select(ready_flags.len(), |_| true);
        let expected: Vec<u64> = ready_flags
            .iter()
            .enumerate()
            .filter(|(_, &r)| r)
            .map(|(i, _)| i as u64)
            .collect();
        let got: Vec<u64> = picked.iter().map(|e| e.seq.0).collect();
        prop_assert_eq!(got, expected);
    }

    /// Histogram mean always lies between the extremes and percentiles are
    /// monotone in the requested fraction.
    #[test]
    fn histogram_mean_and_percentiles(values in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mean = h.mean();
        prop_assert!(mean >= h.min().unwrap() as f64 - 1e-9);
        prop_assert!(mean <= h.max().unwrap() as f64 + 1e-9);
        let p50 = h.percentile(0.5).unwrap();
        let p90 = h.percentile(0.9).unwrap();
        let p100 = h.percentile(1.0).unwrap();
        prop_assert!(p50 <= p90 && p90 <= p100);
    }

    /// The occupancy tracker's mean is always between zero and the peak.
    #[test]
    fn occupancy_mean_bounded_by_peak(samples in prop::collection::vec(0u64..500, 1..200)) {
        let mut t = OccupancyTracker::new();
        for &s in &samples {
            t.sample_cycle(s);
        }
        prop_assert!(t.mean() <= t.peak() as f64 + 1e-9);
        prop_assert!(t.mean() >= 0.0);
        prop_assert_eq!(t.cycles(), samples.len() as u64);
    }

    /// The stage-bus timing wheel behaves exactly like a `(cycle, payload)`
    /// min-heap (the seed implementation) on arbitrary interleavings of
    /// schedules and advances: same pop order, same due-ness, same length —
    /// including past scheduling (relative to the last drain point), events
    /// far beyond the wheel horizon, and `now` jumps much larger than the
    /// slot array.
    #[test]
    fn timing_wheel_matches_heap_reference(
        raw_ops in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u8>()), 1..200),
    ) {
        let mut wheel = TimingWheel::new(16);
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut next_payload = 0u64;
        let schedule = |wheel: &mut TimingWheel,
                            heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
                            cycle: u64,
                            payload: u64| {
            wheel.schedule(cycle, payload);
            heap.push(Reverse((cycle, payload)));
        };
        for (kind, a, b) in raw_ops {
            match kind % 4 {
                // Schedule ahead of `now`: within the wheel for small
                // offsets, in the far level beyond ~16 cycles.
                0 => {
                    schedule(&mut wheel, &mut heap, now + u64::from(a), next_payload);
                    next_payload += 1;
                }
                // Schedule at or before `now` (a zero-latency event issued
                // "last cycle"): due immediately, ordered by its cycle.
                1 => {
                    let cycle = now.saturating_sub(u64::from(b));
                    schedule(&mut wheel, &mut heap, cycle, next_payload);
                    next_payload += 1;
                }
                // Advance a little or a lot and drain everything due,
                // comparing pop-by-pop against the heap.
                _ => {
                    now += match b % 4 {
                        0 => 1,
                        1 => u64::from(b),
                        2 => u64::from(a),
                        _ => 100_000 + u64::from(a), // far past the wheel size
                    };
                    loop {
                        let got = wheel.pop_due(now);
                        let expected = match heap.peek() {
                            Some(&Reverse((cycle, _))) if cycle <= now => {
                                heap.pop().map(|Reverse((_, p))| p)
                            }
                            _ => None,
                        };
                        prop_assert_eq!(got, expected, "divergence at now={}", now);
                        if got.is_none() {
                            break;
                        }
                    }
                    prop_assert_eq!(wheel.len(), heap.len());
                    prop_assert_eq!(wheel.is_empty(), heap.is_empty());
                }
            }
        }
        // Final drain far beyond everything scheduled: both must empty in
        // the same order.
        now += 10_000_000;
        while let Some(got) = wheel.pop_due(now) {
            let expected = heap.pop().map(|Reverse((_, p))| p);
            prop_assert_eq!(Some(got), expected);
        }
        prop_assert!(heap.is_empty());
        prop_assert_eq!(wheel.len(), 0);
    }

    /// A static instruction never exposes the zero register or zero-idiom
    /// sources as dataflow dependencies.
    #[test]
    fn static_inst_dataflow_sources(srcs in prop::collection::vec(0usize..32, 0..3),
                                    zero_idiom in any::<bool>()) {
        let mut inst = StaticInst::new(Pc(0x10), OpClass::IntAlu).with_dst(ArchReg::int(1));
        for &s in &srcs {
            inst = inst.with_src(ArchReg::int(s));
        }
        if zero_idiom {
            inst = inst.with_zero_idiom();
        }
        for src in inst.dataflow_srcs() {
            prop_assert!(!src.is_zero());
            prop_assert!(!zero_idiom, "zero idioms must not expose dataflow sources");
        }
    }
}
