//! End-to-end integration tests: whole workloads through whole machine
//! configurations, checking the behaviours the paper's argument rests on.

use ltp_core::{LtpConfig, LtpMode};
use ltp_experiments::runner::{limit_study_config, run_point, RunOptions};
use ltp_pipeline::PipelineConfig;
use ltp_workloads::WorkloadKind;

fn opts() -> RunOptions {
    RunOptions {
        detail_insts: 8_000,
        warm_insts: 4_000,
        seed: 1234,
    }
}

#[test]
fn every_workload_completes_on_every_headline_config() {
    let configs = [
        PipelineConfig::micro2015_baseline(),
        PipelineConfig::small_no_ltp(),
        PipelineConfig::ltp_proposed(),
    ];
    for kind in WorkloadKind::ALL {
        for cfg in configs {
            let r = run_point(kind, cfg, &opts());
            assert_eq!(
                r.instructions,
                opts().detail_insts,
                "{kind} must commit every instruction on {cfg:?}"
            );
            assert!(
                r.cpi() > 0.1 && r.cpi() < 500.0,
                "{kind} produced an absurd CPI {}",
                r.cpi()
            );
        }
    }
}

#[test]
fn larger_windows_never_hurt_mlp_sensitive_kernels() {
    let o = opts();
    for kind in [WorkloadKind::IndirectStream, WorkloadKind::GatherFp] {
        let small = run_point(
            kind,
            PipelineConfig::limit_study_unlimited().with_iq(16),
            &o,
        );
        let medium = run_point(
            kind,
            PipelineConfig::limit_study_unlimited().with_iq(64),
            &o,
        );
        let large = run_point(
            kind,
            PipelineConfig::limit_study_unlimited().with_iq(256),
            &o,
        );
        assert!(
            medium.cpi() <= small.cpi() * 1.02,
            "{kind}: IQ 64 should not be slower than IQ 16 ({} vs {})",
            medium.cpi(),
            small.cpi()
        );
        assert!(
            large.cpi() <= medium.cpi() * 1.02,
            "{kind}: IQ 256 should not be slower than IQ 64 ({} vs {})",
            large.cpi(),
            medium.cpi()
        );
        assert!(
            large.avg_outstanding_misses() > small.avg_outstanding_misses(),
            "{kind}: a larger window must expose more MLP"
        );
    }
}

#[test]
fn ltp_recovers_performance_lost_by_shrinking_the_iq() {
    // The paper's headline (Figure 6 row 1 / Figure 10): at IQ 32 the ideal
    // LTP gets close to the IQ 64 baseline, and clearly beats IQ 32 alone.
    let o = opts();
    let kind = WorkloadKind::IndirectStream;
    let baseline = run_point(kind, limit_study_config(LtpMode::Off).with_iq(64), &o);
    let small = run_point(kind, limit_study_config(LtpMode::Off).with_iq(32), &o);
    let small_ltp = run_point(kind, limit_study_config(LtpMode::Both).with_iq(32), &o);

    assert!(
        small.cpi() > baseline.cpi(),
        "shrinking the IQ must cost performance ({} vs {})",
        small.cpi(),
        baseline.cpi()
    );
    assert!(
        small_ltp.cpi() < small.cpi(),
        "LTP must recover part of the loss ({} vs {})",
        small_ltp.cpi(),
        small.cpi()
    );
    let loss_without = small.cpi() / baseline.cpi() - 1.0;
    let loss_with = small_ltp.cpi() / baseline.cpi() - 1.0;
    assert!(
        loss_with < loss_without * 0.7,
        "LTP should recover a large share of the loss (with: {loss_with:.3}, without: {loss_without:.3})"
    );
}

#[test]
fn ltp_parks_mostly_non_urgent_instructions_on_memory_bound_code() {
    let o = opts();
    let r = run_point(
        WorkloadKind::IndirectStream,
        limit_study_config(LtpMode::NonUrgentOnly).with_iq(32),
        &o,
    );
    assert!(r.ltp.total_parked() > 0);
    // In NU-only mode nothing classified Urgent+Ready should be parked except
    // through the parked-bit rule; the dominant share must be non-urgent.
    let urgent_parked = r.ltp.parked[0] + r.ltp.parked[1];
    let non_urgent_parked = r.ltp.parked[2] + r.ltp.parked[3];
    assert!(
        non_urgent_parked > urgent_parked,
        "non-urgent instructions must dominate the LTP ({non_urgent_parked} vs {urgent_parked})"
    );
}

#[test]
fn monitor_keeps_ltp_off_on_compute_bound_code() {
    let o = opts();
    let r = run_point(
        WorkloadKind::ComputeBound,
        PipelineConfig::ltp_proposed(),
        &o,
    );
    assert!(
        r.ltp_enabled_fraction < 0.15,
        "the DRAM-timer monitor should power-gate LTP on compute-bound code, got {}",
        r.ltp_enabled_fraction
    );
    assert!(
        r.ltp.total_parked() < o.detail_insts / 10,
        "almost nothing should be parked when LTP is off"
    );

    let memory = run_point(
        WorkloadKind::IndirectStream,
        PipelineConfig::ltp_proposed(),
        &o,
    );
    assert!(
        memory.ltp_enabled_fraction > 0.5,
        "LTP should be on most of the time on memory-bound code, got {}",
        memory.ltp_enabled_fraction
    );
}

#[test]
fn pointer_chasing_gains_little_from_ltp() {
    let o = opts();
    let base = run_point(
        WorkloadKind::PointerChase,
        PipelineConfig::micro2015_baseline(),
        &o,
    );
    let ltp = run_point(
        WorkloadKind::PointerChase,
        PipelineConfig::ltp_proposed(),
        &o,
    );
    let delta = (base.cpi() / ltp.cpi() - 1.0) * 100.0;
    assert!(
        delta.abs() < 12.0,
        "LTP should neither help nor hurt pointer chasing much, got {delta:+.1}%"
    );
}

#[test]
fn disabled_ltp_equals_baseline_configuration() {
    // An LTP with zero effect (mode Off) must behave identically to the
    // baseline machine: same cycle count on the same trace.
    let o = opts();
    let a = run_point(
        WorkloadKind::HashProbe,
        PipelineConfig::micro2015_baseline(),
        &o,
    );
    let b = run_point(
        WorkloadKind::HashProbe,
        PipelineConfig::micro2015_baseline().with_ltp(LtpConfig::disabled()),
        &o,
    );
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
}

#[test]
fn realistic_classifier_approaches_oracle() {
    // §5.6 / appendix: the UIT-based classifier with the hit/miss predictor
    // should come reasonably close to the oracle-classified ideal LTP.
    let o = opts();
    let kind = WorkloadKind::IndirectStream;
    let oracle = run_point(
        kind,
        limit_study_config(LtpMode::NonUrgentOnly).with_iq(32),
        &o,
    );
    let realistic = run_point(
        kind,
        PipelineConfig::limit_study_unlimited()
            .with_iq(32)
            .with_ltp(LtpConfig::nu_only_128x4().with_entries(4096).with_ports(8)),
        &o,
    );
    assert!(
        realistic.cpi() < oracle.cpi() * 1.35,
        "the runtime classifier should be within ~35% of the oracle (got {} vs {})",
        realistic.cpi(),
        oracle.cpi()
    );
}
