//! Golden-stats regression test: pins the simulator's cycle-for-cycle
//! behaviour to fingerprints captured from the pre-refactor (seed) code.
//!
//! Every fingerprint covers one `(workload, LtpMode, classification path)`
//! point: cycle count, committed instructions, LTP parking/release counters,
//! IQ/RF activity, LLC-missing loads and time-weighted occupancies. Any
//! change to the timing behaviour of the pipeline — stage ordering, resource
//! accounting, wakeup timing, classification — shifts at least one of these
//! numbers, so a green run proves the stage-module refactor is
//! cycle-for-cycle identical to the monolithic seed simulator.

use ltp_core::{LtpConfig, LtpMode};
use ltp_experiments::runner::{limit_study_config, run_point, RunOptions};
use ltp_pipeline::{PipelineConfig, RunResult};
use ltp_workloads::WorkloadKind;

/// The exact run options the fingerprints were captured with.
fn opts() -> RunOptions {
    RunOptions {
        detail_insts: 6_000,
        warm_insts: 4_000,
        seed: 2015,
    }
}

/// Renders the stable fingerprint of a run.
fn fingerprint(r: &RunResult) -> String {
    format!(
        "cycles={} insts={} parked={} rel_io={} rel_ooo={} forced={} iqw={} rfw={} llc={} \
         ltp_occ={:.6} ltp_peak={} iq_occ={:.6} regs_occ={:.6}",
        r.cycles,
        r.instructions,
        r.ltp.total_parked(),
        r.ltp.released_in_order,
        r.ltp.released_out_of_order,
        r.ltp.force_released,
        r.activity.iq_writes,
        r.activity.rf_writes,
        r.llc_miss_loads,
        r.occupancy.ltp.mean(),
        r.occupancy.ltp.peak(),
        r.occupancy.iq.mean(),
        r.occupancy.regs.mean(),
    )
}

/// The realistic (UIT-classified) machine for a given LTP mode: the proposed
/// design's sizing with only the parking mode changed.
fn realistic(mode: LtpMode) -> PipelineConfig {
    match mode {
        LtpMode::Off => PipelineConfig::small_no_ltp(),
        m => {
            let ltp = LtpConfig {
                mode: m,
                ..LtpConfig::nu_only_128x4()
            };
            PipelineConfig::ltp_proposed().with_ltp(ltp)
        }
    }
}

/// Fingerprints captured from the seed (pre-refactor) simulator at commit
/// `acf9cc5` with `examples`-equivalent code. Do not regenerate casually:
/// a mismatch means the simulator is no longer cycle-identical to the seed.
const GOLDEN: &[(&str, &str)] = &[
    ("indirect_stream/Off/uit", "cycles=11258 insts=6000 parked=0 rel_io=0 rel_ooo=0 forced=0 iqw=6000 rfw=4910 llc=562 ltp_occ=0.000000 ltp_peak=0 iq_occ=23.338160 regs_occ=102.747646"),
    ("indirect_stream/Off/oracle", "cycles=8286 insts=6000 parked=0 rel_io=0 rel_ooo=0 forced=0 iqw=6000 rfw=4910 llc=565 ltp_occ=0.000000 ltp_peak=0 iq_occ=31.505914 regs_occ=138.044654"),
    ("indirect_stream/NonUrgentOnly/uit", "cycles=10207 insts=6000 parked=2636 rel_io=214 rel_ooo=0 forced=2422 iqw=6000 rfw=4910 llc=564 ltp_occ=27.361908 ltp_peak=85 iq_occ=19.686490 regs_occ=98.604487"),
    ("indirect_stream/NonUrgentOnly/oracle", "cycles=5776 insts=6000 parked=3185 rel_io=2373 rel_ooo=0 forced=812 iqw=6000 rfw=4910 llc=580 ltp_occ=105.843144 ltp_peak=133 iq_occ=11.935769 regs_occ=136.830159"),
    ("indirect_stream/NonReadyOnly/uit", "cycles=12265 insts=6000 parked=1030 rel_io=0 rel_ooo=0 forced=1030 iqw=6000 rfw=4910 llc=563 ltp_occ=0.136323 ltp_peak=12 iq_occ=20.980514 regs_occ=95.099225"),
    ("indirect_stream/NonReadyOnly/oracle", "cycles=8145 insts=6000 parked=1035 rel_io=0 rel_ooo=4 forced=1031 iqw=6000 rfw=4910 llc=572 ltp_occ=1.147821 ltp_peak=43 iq_occ=31.338244 regs_occ=141.658072"),
    ("indirect_stream/Both/uit", "cycles=10783 insts=6000 parked=2638 rel_io=74 rel_ooo=8 forced=2556 iqw=6000 rfw=4910 llc=563 ltp_occ=17.064824 ltp_peak=79 iq_occ=20.196699 regs_occ=98.471297"),
    ("indirect_stream/Both/oracle", "cycles=5777 insts=6000 parked=3209 rel_io=2448 rel_ooo=4 forced=757 iqw=6000 rfw=4910 llc=582 ltp_occ=107.034447 ltp_peak=139 iq_occ=11.560845 regs_occ=134.032889"),
    ("gather_fp/Off/uit", "cycles=15599 insts=6000 parked=0 rel_io=0 rel_ooo=0 forced=0 iqw=6000 rfw=5480 llc=1044 ltp_occ=0.000000 ltp_peak=0 iq_occ=31.774857 regs_occ=92.026732"),
    ("gather_fp/Off/oracle", "cycles=15599 insts=6000 parked=0 rel_io=0 rel_ooo=0 forced=0 iqw=6000 rfw=5480 llc=1044 ltp_occ=0.000000 ltp_peak=0 iq_occ=31.774857 regs_occ=92.026732"),
    ("gather_fp/NonUrgentOnly/uit", "cycles=15539 insts=6000 parked=2593 rel_io=2 rel_ooo=0 forced=2591 iqw=6000 rfw=5480 llc=1044 ltp_occ=0.380076 ltp_peak=27 iq_occ=32.267199 regs_occ=92.896905"),
    ("gather_fp/NonUrgentOnly/oracle", "cycles=15476 insts=6000 parked=2843 rel_io=2 rel_ooo=0 forced=2841 iqw=6000 rfw=5480 llc=1047 ltp_occ=0.459550 ltp_peak=18 iq_occ=32.263569 regs_occ=93.089623"),
    ("gather_fp/NonReadyOnly/uit", "cycles=15571 insts=6000 parked=2298 rel_io=2 rel_ooo=0 forced=2296 iqw=6000 rfw=5480 llc=1044 ltp_occ=0.273264 ltp_peak=4 iq_occ=32.191895 regs_occ=92.540299"),
    ("gather_fp/NonReadyOnly/oracle", "cycles=15571 insts=6000 parked=2333 rel_io=2 rel_ooo=0 forced=2331 iqw=6000 rfw=5480 llc=1047 ltp_occ=0.292916 ltp_peak=13 iq_occ=32.203905 regs_occ=92.577805"),
    ("gather_fp/Both/uit", "cycles=15561 insts=6000 parked=2590 rel_io=2 rel_ooo=4 forced=2584 iqw=6000 rfw=5480 llc=1044 ltp_occ=0.358782 ltp_peak=17 iq_occ=32.209113 regs_occ=92.633635"),
    ("gather_fp/Both/oracle", "cycles=15447 insts=6000 parked=2854 rel_io=2 rel_ooo=0 forced=2852 iqw=6000 rfw=5480 llc=1047 ltp_occ=0.480546 ltp_peak=19 iq_occ=32.297922 regs_occ=93.230271"),
    ("mixed_phases/Off/uit", "cycles=4604 insts=6000 parked=0 rel_io=0 rel_ooo=0 forced=0 iqw=6000 rfw=4816 llc=129 ltp_occ=0.000000 ltp_peak=0 iq_occ=27.905734 regs_occ=96.579930"),
    ("mixed_phases/Off/oracle", "cycles=4201 insts=6000 parked=0 rel_io=0 rel_ooo=0 forced=0 iqw=6000 rfw=4816 llc=132 ltp_occ=0.000000 ltp_peak=0 iq_occ=30.964294 regs_occ=106.012140"),
    ("mixed_phases/NonUrgentOnly/uit", "cycles=4422 insts=6000 parked=662 rel_io=145 rel_ooo=0 forced=517 iqw=6000 rfw=4816 llc=139 ltp_occ=22.277702 ltp_peak=128 iq_occ=27.930348 regs_occ=98.416327"),
    ("mixed_phases/NonUrgentOnly/oracle", "cycles=4586 insts=6000 parked=1351 rel_io=441 rel_ooo=0 forced=910 iqw=6000 rfw=4816 llc=153 ltp_occ=60.834060 ltp_peak=221 iq_occ=28.103794 regs_occ=107.221326"),
    ("mixed_phases/NonReadyOnly/uit", "cycles=4649 insts=6000 parked=129 rel_io=0 rel_ooo=0 forced=129 iqw=6000 rfw=4816 llc=127 ltp_occ=0.086040 ltp_peak=9 iq_occ=27.012261 regs_occ=95.029039"),
    ("mixed_phases/NonReadyOnly/oracle", "cycles=4201 insts=6000 parked=146 rel_io=0 rel_ooo=0 forced=146 iqw=6000 rfw=4816 llc=142 ltp_occ=0.189003 ltp_peak=12 iq_occ=31.467032 regs_occ=107.771959"),
    ("mixed_phases/Both/uit", "cycles=4417 insts=6000 parked=665 rel_io=145 rel_ooo=12 forced=508 iqw=6000 rfw=4816 llc=139 ltp_occ=22.603577 ltp_peak=128 iq_occ=28.074259 regs_occ=98.437175"),
    ("mixed_phases/Both/oracle", "cycles=4395 insts=6000 parked=1354 rel_io=429 rel_ooo=73 forced=852 iqw=6000 rfw=4816 llc=144 ltp_occ=63.328328 ltp_peak=221 iq_occ=28.935836 regs_occ=107.570421"),
];

fn expected(key: &str) -> &'static str {
    GOLDEN
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("no golden entry for {key}"))
}

const KINDS: [WorkloadKind; 3] = [
    WorkloadKind::IndirectStream,
    WorkloadKind::GatherFp,
    WorkloadKind::MixedPhases,
];
const MODES: [LtpMode; 4] = [
    LtpMode::Off,
    LtpMode::NonUrgentOnly,
    LtpMode::NonReadyOnly,
    LtpMode::Both,
];

#[test]
fn uit_path_matches_seed_for_all_modes() {
    let o = opts();
    for kind in KINDS {
        for mode in MODES {
            let key = format!("{}/{mode:?}/uit", kind.name());
            let r = run_point(kind, realistic(mode), &o);
            assert_eq!(fingerprint(&r), expected(&key), "fingerprint drift: {key}");
        }
    }
}

#[test]
fn oracle_path_matches_seed_for_all_modes() {
    let o = opts();
    for kind in KINDS {
        for mode in MODES {
            let key = format!("{}/{mode:?}/oracle", kind.name());
            let r = run_point(kind, limit_study_config(mode).with_iq(32), &o);
            assert_eq!(fingerprint(&r), expected(&key), "fingerprint drift: {key}");
        }
    }
}
