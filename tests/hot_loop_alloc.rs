//! Steady-state allocation audit of the hot cycle loop.
//!
//! The scheduling rewrite (indexed IQ wakeup, timing-wheel stage bus,
//! indexed LTP queue, scratch-buffer reuse) claims the per-cycle hot path
//! performs **no heap allocation in steady state**. This test pins that: a
//! counting global allocator watches a full simulation of the mixed kernel
//! on the proposed LTP machine, and once the machine has reached steady
//! state (capacities grown, tables warm) every subsequent cycle must
//! allocate nothing.
//!
//! The trace and configuration are fixed, so the test is deterministic; a
//! failure means a per-cycle allocation crept back into the IQ, stage-bus,
//! release or commit path.

use ltp_pipeline::{PipelineConfig, Processor};
use ltp_workloads::{replay_slice, trace, WorkloadKind};
use std::sync::atomic::Ordering;

// The counting allocator needs `unsafe impl GlobalAlloc`; the workspace
// otherwise denies unsafe code, so the exemption is scoped to this shim.
#[allow(unsafe_code)]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Number of allocation (and reallocation) calls observed.
    pub static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }
    }
}

#[global_allocator]
static ALLOCATOR: counting::CountingAlloc = counting::CountingAlloc;

fn alloc_calls() -> u64 {
    counting::ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Runs `kind` on `cfg` and returns `(steady_cycles, allocating_cycles)`
/// for the window after `warm_committed` instructions have committed.
fn audit(cfg: PipelineConfig, kind: WorkloadKind, insts: u64, warm_committed: u64) -> (u64, u64) {
    let warm = trace(kind, 7, 2_000);
    let detail = trace(kind, 8, insts as usize);
    let mut cpu = Processor::new(cfg);
    cpu.warm_caches(&warm);

    let mut last = alloc_calls();
    let mut steady_cycles = 0u64;
    let mut allocating_cycles = 0u64;
    cpu.run_observed(replay_slice(kind.name(), &detail), insts, |view| {
        let now = alloc_calls();
        if view.committed > warm_committed {
            steady_cycles += 1;
            if now != last {
                allocating_cycles += 1;
            }
        }
        last = now;
    })
    .expect("no deadlock");
    (steady_cycles, allocating_cycles)
}

/// The proposed LTP machine on the mixed kernel: after warm-up, the cycle
/// loop (wakeup, select, release, commit, stage-bus traffic) is
/// allocation-free.
#[test]
fn steady_state_cycles_do_not_allocate() {
    let (steady, allocating) = audit(
        PipelineConfig::ltp_proposed(),
        WorkloadKind::MixedPhases,
        6_000,
        3_000,
    );
    assert!(
        steady > 500,
        "audit window too small to be meaningful: {steady} cycles"
    );
    assert_eq!(
        allocating, 0,
        "{allocating} of {steady} steady-state cycles performed a heap allocation"
    );
}

/// Same audit for the baseline (LTP off) machine, which exercises the pure
/// IQ/bus path without the parking queue.
#[test]
fn baseline_steady_state_cycles_do_not_allocate() {
    let (steady, allocating) = audit(
        PipelineConfig::micro2015_baseline(),
        WorkloadKind::MixedPhases,
        6_000,
        3_000,
    );
    assert!(steady > 500, "audit window too small: {steady} cycles");
    assert_eq!(
        allocating, 0,
        "{allocating} of {steady} steady-state cycles performed a heap allocation"
    );
}
