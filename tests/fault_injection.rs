//! Fault-injection tests for the fault-tolerant sampled runner.
//!
//! Every failure path the fault-tolerance layer claims to cover is driven on
//! purpose here with a deterministic [`FaultPlan`]:
//!
//! - a panicking worker attempt is isolated and retried, losing at most that
//!   one attempt, and the recovered run aggregates **bit-identically** to a
//!   fault-free one;
//! - a deadline-busting attempt is retried the same way;
//! - exhausted retries degrade the run to a clearly flagged *partial* result
//!   with a widened confidence interval instead of failing it;
//! - a deterministic simulation error (a detected deadlock) is **not**
//!   retried and surfaces as an [`IntervalFailure`] carrying the
//!   [`DeadlockSnapshot`] diagnostics;
//! - a journaled run that dies mid-way resumes from the journal and
//!   reproduces the uninterrupted result exactly, including when the journal
//!   tail was corrupted or truncated by the crash.
//!
//! The simulator is deterministic, so "recovered correctly" is assertable as
//! bit-for-bit equality of every per-interval measurement and of the
//! aggregate confidence interval.

use ltp_experiments::fault::FaultPlan;
use ltp_experiments::parallel::{FailureKind, RetryPolicy};
use ltp_experiments::sampled::{
    IntervalError, SampleControl, SampleSpec, SampledRequest, SampledResult,
};
use ltp_experiments::{journal, sampled};
use ltp_isa::{DecodedTrace, DynInst};
use ltp_pipeline::{PipelineConfig, RunError};
use ltp_workloads::{trace, WorkloadKind};
use std::path::PathBuf;
use std::time::Duration;

/// A cheap but multi-interval spec (the suite runs a dozen sampled runs).
fn spec() -> SampleSpec {
    SampleSpec {
        total_insts: 24_000,
        intervals: 4,
        detail_warm: 500,
        detail_measure: 1_000,
        seed: 7,
        warm_insts: 2_000,
    }
}

fn workload() -> (WorkloadKind, Vec<DynInst>, DecodedTrace) {
    let kind = WorkloadKind::IndirectStream;
    let detail = trace(
        kind,
        spec().seed.wrapping_add(1),
        spec().total_insts as usize,
    );
    let dec = DecodedTrace::from_insts(&detail);
    (kind, detail, dec)
}

/// Runs the sampled runner over the shared workload with `control`.
fn run_controlled(control: &SampleControl) -> SampledResult {
    let (kind, detail, dec) = workload();
    SampledRequest::new(PipelineConfig::ltp_proposed(), kind, spec())
        .trace(&detail)
        .decoded(&dec)
        .control(control.clone())
        .run()
        .expect("whole-run failure")
}

/// The fault-free reference result every recovery scenario must reproduce.
fn reference() -> SampledResult {
    run_controlled(&SampleControl::default())
}

/// Retry policy used by the recovery tests: generous attempts, no backoff
/// (keeps the suite fast), no deadline.
fn retrying() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::ZERO,
        deadline: None,
    }
}

/// Asserts two sampled results carry bit-identical measurements and
/// aggregates (timing is wall-clock and legitimately differs).
fn assert_bit_identical(a: &SampledResult, b: &SampledResult, what: &str) {
    assert_eq!(
        a.intervals.len(),
        b.intervals.len(),
        "{what}: interval count"
    );
    for (x, y) in a.intervals.iter().zip(&b.intervals) {
        assert_eq!(x.index, y.index, "{what}");
        assert_eq!(x.start, y.start, "{what} interval {}", x.index);
        assert_eq!(
            x.instructions, y.instructions,
            "{what} interval {}",
            x.index
        );
        assert_eq!(x.cycles, y.cycles, "{what} interval {}", x.index);
        assert_eq!(x.weight, y.weight, "{what} interval {}", x.index);
        assert_eq!(
            x.ipc.to_bits(),
            y.ipc.to_bits(),
            "{what} interval {}",
            x.index
        );
    }
    assert_eq!(a.ipc.mean.to_bits(), b.ipc.mean.to_bits(), "{what}: mean");
    assert_eq!(
        a.ipc.half_width.to_bits(),
        b.ipc.half_width.to_bits(),
        "{what}: CI half-width"
    );
    assert_eq!(a.ipc.n, b.ipc.n, "{what}: sample count");
    assert_eq!(a.detailed_insts, b.detailed_insts, "{what}: detailed insts");
    assert_eq!(
        a.checkpoint_bytes, b.checkpoint_bytes,
        "{what}: checkpoint bytes"
    );
}

/// A unique scratch journal path per test (the suite runs tests in
/// parallel within one process).
fn scratch_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ltp_fault_{}_{tag}.journal", std::process::id()))
}

#[test]
fn injected_panic_is_isolated_and_retried() {
    // Kill attempt 0 of one interval: the worker's panic must not tear down
    // the scope, must cost exactly that one attempt, and the retried run
    // must match the fault-free reference bit for bit.
    let r = run_controlled(&SampleControl {
        retry: RetryPolicy {
            max_attempts: 2,
            ..retrying()
        },
        faults: FaultPlan::new().panic_at(2, 0),
        ..SampleControl::default()
    });
    assert!(!r.is_partial(), "one panic within budget must recover");
    assert_bit_identical(&r, &reference(), "panic-retried run");
}

#[test]
fn all_but_one_interval_panicking_still_recovers_bit_identically() {
    // N-1 of the N intervals lose their first attempt; with one retry each
    // the run still completes and aggregates identically to fault-free.
    let mut plan = FaultPlan::new();
    for i in 1..spec().intervals {
        plan = plan.panic_at(i, 0);
    }
    let r = run_controlled(&SampleControl {
        retry: retrying(),
        faults: plan,
        ..SampleControl::default()
    });
    assert!(!r.is_partial());
    assert_bit_identical(&r, &reference(), "N-1 panics");
}

#[test]
fn deadline_overrun_is_retried() {
    // Attempt 0 of interval 1 sleeps well past the per-attempt deadline; the
    // overrun attempt is discarded and the retry (which does not sleep)
    // succeeds with the same deterministic measurement.
    let r = run_controlled(&SampleControl {
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
            deadline: Some(Duration::from_millis(40)),
        },
        faults: FaultPlan::new().delay_at(1, 0, 250),
        ..SampleControl::default()
    });
    assert!(
        !r.is_partial(),
        "deadline overrun within budget must recover"
    );
    assert_bit_identical(&r, &reference(), "deadline-retried run");
}

#[test]
fn exhausted_retries_degrade_to_partial_with_widened_ci() {
    // Interval 2 dies on every allowed attempt: the run must degrade to a
    // flagged partial result — remaining intervals intact, the lost one
    // accounted for, and the CI widened exactly per the stats contract.
    let reference = reference();
    let r = run_controlled(&SampleControl {
        retry: RetryPolicy {
            max_attempts: 2,
            ..retrying()
        },
        faults: FaultPlan::new().panic_at(2, 0).panic_at(2, 1),
        ..SampleControl::default()
    });
    assert!(r.is_partial());
    assert_eq!(r.failures.len(), 1);
    let f = &r.failures[0];
    assert_eq!(f.index, 2);
    assert_eq!(f.attempts, 2, "both allowed attempts were consumed");
    match &f.error {
        IntervalError::Task(t) => match &t.failure {
            FailureKind::Panic(msg) => {
                assert!(msg.contains("injected fault"), "panic message: {msg}")
            }
            other => panic!("expected a panic failure, got {other}"),
        },
        other => panic!("expected a task failure, got {other}"),
    }
    // The surviving intervals are the reference's, minus the lost one.
    let survivors: Vec<f64> = reference
        .intervals
        .iter()
        .filter(|m| m.index != 2)
        .map(|m| m.ipc)
        .collect();
    assert_eq!(r.intervals.len(), survivors.len());
    assert_eq!(r.ipc.n, survivors.len());
    let expected = ltp_stats::ConfidenceInterval::from_samples(&survivors).widened_for_missing(1);
    assert_eq!(r.ipc.mean.to_bits(), expected.mean.to_bits());
    assert_eq!(r.ipc.half_width.to_bits(), expected.half_width.to_bits());
    assert!(
        r.ipc.half_width > ltp_stats::ConfidenceInterval::from_samples(&survivors).half_width,
        "partial CI must be wider than the unweighted survivors' CI"
    );
}

#[test]
fn deadlock_surfaces_as_interval_failure_with_snapshot() {
    // A starved frontend never commits, so every interval's detailed run
    // trips the deadlock watchdog. Deterministic errors are not retried —
    // each interval fails once, carrying the machine-state diagnostics —
    // and the runner degrades instead of hanging or aborting.
    let (kind, detail, dec) = workload();
    let mut cfg = PipelineConfig::ltp_proposed();
    cfg.frontend_delay = 10_000_000;
    let r = SampledRequest::new(cfg, kind, spec())
        .trace(&detail)
        .decoded(&dec)
        .retry(retrying())
        .run()
        .expect("deadlock is a per-interval failure, not a whole-run error");
    assert!(r.is_partial());
    assert_eq!(r.failures.len(), spec().intervals);
    assert!(r.intervals.is_empty());
    for f in &r.failures {
        assert_eq!(f.attempts, 1, "deterministic errors must not be retried");
        match &f.error {
            IntervalError::Run(RunError::Deadlock { snapshot, .. }) => {
                assert_eq!(snapshot.workload, kind.name());
                assert_eq!(snapshot.iq_size, PipelineConfig::ltp_proposed().iq_size);
            }
            other => panic!("interval {}: expected a deadlock, got {other}", f.index),
        }
    }
}

#[test]
fn journaled_fault_free_run_is_unchanged_and_replayable() {
    // Journaling must be invisible to the results, and an immediate resume
    // must replay every interval without re-simulating any.
    let path = scratch_journal("replay");
    let journaled = run_controlled(&SampleControl {
        journal: Some(path.clone()),
        ..SampleControl::default()
    });
    assert!(journaled.journal_error.is_none());
    assert_bit_identical(&journaled, &reference(), "journaled run");

    let resumed = run_controlled(&SampleControl {
        journal: Some(path.clone()),
        resume: true,
        ..SampleControl::default()
    });
    assert_eq!(resumed.resumed_intervals, spec().intervals);
    assert_bit_identical(&resumed, &reference(), "fully replayed run");
    let _ = std::fs::remove_file(path);
}

#[test]
fn crash_and_resume_matches_uninterrupted_run() {
    // "Crash": the first run exhausts its single attempt on one interval and
    // exits partial, with every completed interval journaled. The resume run
    // replays those and simulates only the missing one; the merged result
    // must be bit-identical to a run that never crashed.
    let path = scratch_journal("resume");
    let crashed = run_controlled(&SampleControl {
        retry: RetryPolicy::none(),
        faults: FaultPlan::new().panic_at(1, 0),
        journal: Some(path.clone()),
        ..SampleControl::default()
    });
    assert!(crashed.is_partial());
    assert_eq!(crashed.intervals.len(), spec().intervals - 1);

    let resumed = run_controlled(&SampleControl {
        journal: Some(path.clone()),
        resume: true,
        ..SampleControl::default()
    });
    assert!(!resumed.is_partial());
    assert_eq!(resumed.resumed_intervals, spec().intervals - 1);
    assert_bit_identical(&resumed, &reference(), "crash-and-resume");
    let _ = std::fs::remove_file(path);
}

#[test]
fn corrupted_journal_record_is_shed_on_resume() {
    // A bit flip in one journal record (the crash wrote garbage): resume
    // must replay the intact prefix, quietly re-simulate the rest and still
    // land on the uninterrupted result.
    let path = scratch_journal("corrupt");
    let first = run_controlled(&SampleControl {
        journal: Some(path.clone()),
        ..SampleControl::default()
    });
    assert!(first.journal_error.is_none());
    journal::corrupt_journal_records(&path, &[1]).expect("corrupt record 1");

    let resumed = run_controlled(&SampleControl {
        journal: Some(path.clone()),
        resume: true,
        ..SampleControl::default()
    });
    assert!(!resumed.is_partial());
    assert!(
        resumed.resumed_intervals < spec().intervals,
        "the corrupted record (and its tail) must not replay"
    );
    assert_bit_identical(&resumed, &reference(), "resume past corruption");
    let _ = std::fs::remove_file(path);
}

#[test]
fn truncated_journal_is_shed_on_resume() {
    // The crash cut the journal mid-record: the readable prefix replays,
    // the torn tail is re-simulated, the result is exact.
    let path = scratch_journal("truncate");
    run_controlled(&SampleControl {
        journal: Some(path.clone()),
        ..SampleControl::default()
    });
    let bytes = std::fs::read(&path).expect("journal written");
    std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).expect("truncate");

    let resumed = run_controlled(&SampleControl {
        journal: Some(path.clone()),
        resume: true,
        ..SampleControl::default()
    });
    assert!(!resumed.is_partial());
    assert_bit_identical(&resumed, &reference(), "resume past truncation");
    let _ = std::fs::remove_file(path);
}

#[test]
fn mismatched_journal_is_ignored_on_resume() {
    // A journal from a *different* run configuration must not contaminate a
    // resume: the header check rejects it and the run starts fresh.
    let path = scratch_journal("mismatch");
    run_controlled(&SampleControl {
        journal: Some(path.clone()),
        config_label: "IQ:32".to_string(),
        ..SampleControl::default()
    });
    let resumed = run_controlled(&SampleControl {
        journal: Some(path.clone()),
        resume: true,
        config_label: "IQ:256".to_string(),
        ..SampleControl::default()
    });
    assert_eq!(
        resumed.resumed_intervals, 0,
        "foreign journal must not replay"
    );
    assert!(!resumed.is_partial());
    assert_bit_identical(&resumed, &reference(), "fresh run after mismatch");
    let _ = std::fs::remove_file(path);
}

#[test]
fn experiment_report_flags_partial_points_and_keeps_digest_deterministic() {
    // End-to-end through the `sample` experiment plumbing: a recovered fault
    // keeps the exit-status accounting clean and the result digest equal to
    // the fault-free run's, while an unrecoverable fault flags the run.
    let opts = ltp_experiments::RunOptions {
        detail_insts: 3_000,
        warm_insts: 1_000,
        seed: 2015,
    };
    // The digest is carried both as machine-readable report meta and in the
    // rendered text; they must agree.
    let digest_of = |report: &ltp_experiments::Report| {
        let meta = report.meta("digest").expect("digest meta").to_string();
        let text_digest = report
            .render_text()
            .lines()
            .find_map(|l| l.strip_prefix("result digest: "))
            .expect("digest line")
            .split_whitespace()
            .next()
            .expect("digest value")
            .to_string();
        assert_eq!(meta, text_digest, "meta and rendered digests must agree");
        meta
    };

    let (clean_report, clean_status) =
        sampled::run_with_control(&opts, &sampled::SampleRunControl::default());
    assert_eq!(clean_status, sampled::SampleRunStatus::default());
    assert!(!clean_report.render_text().contains("DEGRADED RUN"));

    // One injected panic, recovered by the default retry policy: same
    // digest, clean status.
    let (recovered_report, recovered_status) = sampled::run_with_control(
        &opts,
        &sampled::SampleRunControl {
            faults: FaultPlan::new().panic_at(0, 0),
            ..sampled::SampleRunControl::default()
        },
    );
    assert_eq!(recovered_status, sampled::SampleRunStatus::default());
    assert_eq!(
        digest_of(&recovered_report),
        digest_of(&clean_report),
        "a recovered fault must not change the measured intervals"
    );

    // An unrecoverable interval (killed on every attempt of the default
    // 3-attempt policy): the affected points degrade and are flagged.
    let (partial_report, partial_status) = sampled::run_with_control(
        &opts,
        &sampled::SampleRunControl {
            faults: FaultPlan::new()
                .panic_at(0, 0)
                .panic_at(0, 1)
                .panic_at(0, 2),
            ..sampled::SampleRunControl::default()
        },
    );
    assert!(partial_status.partial_points > 0);
    assert_eq!(partial_status.error_points, 0);
    let partial_text = partial_report.render_text();
    assert!(partial_text.contains("DEGRADED RUN"));
    assert!(partial_text.contains("[PARTIAL"));
}
